package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeResult(t *testing.T, resp *http.Response) *JobResult {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var r JobResult
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	return &r
}

func TestHTTPJobRoundTrip(t *testing.T) {
	s := New(Config{Shards: 2, QueueDepth: 8})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := decodeResult(t, postJSON(t, ts.URL+"/jobs",
		&JobRequest{Benchmark: "power", Quick: true, Nodes: 2}))
	if r.Benchmark != "power" || r.Output == "" || r.TimeNs <= 0 {
		t.Errorf("implausible result: %+v", r)
	}
	if r.QueueNs < 0 || r.CompileNs <= 0 || r.RunNs <= 0 {
		t.Errorf("latency breakdown missing: queue=%d compile=%d run=%d",
			r.QueueNs, r.CompileNs, r.RunNs)
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 8})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) *http.Response {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := get("/jobs"); resp.StatusCode != 405 {
		t.Errorf("GET /jobs = %d, want 405", resp.StatusCode)
	}
	if resp := get("/nope"); resp.StatusCode != 404 {
		t.Errorf("GET /nope = %d, want 404", resp.StatusCode)
	}
	if resp := get("/series.json?shard=7"); resp.StatusCode != 400 {
		t.Errorf("bad shard = %d, want 400", resp.StatusCode)
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad body = %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/jobs", &JobRequest{Benchmark: "nbody"})
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown benchmark = %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/jobs", &JobRequest{Source: "int main( {"})
	resp.Body.Close()
	if resp.StatusCode != 422 {
		t.Errorf("uncompilable = %d, want 422", resp.StatusCode)
	}
}

// TestHTTPUnknownFieldsRejected: schema v1 rejects fields it does not know
// with a 400 instead of silently dropping them, on both submission
// endpoints.
func TestHTTPUnknownFieldsRejected(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 8})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/jobs", `{"v":1,"benchmark":"power","turbo":true}`); code != 400 {
		t.Errorf("unknown field on /jobs = %d, want 400", code)
	}
	if code := post("/jobs/batch", `[{"benchmark":"power","priority":9}]`); code != 400 {
		t.Errorf("unknown field on /jobs/batch = %d, want 400", code)
	}
	if code := post("/jobs", `{"v":2,"benchmark":"power"}`); code != 400 {
		t.Errorf("future schema version = %d, want 400", code)
	}
}

func TestHTTPDrainingReturns503(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	drainServer(t, s)

	resp := postJSON(t, ts.URL+"/jobs", &JobRequest{Source: remoteListSrc})
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("draining submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("error body: %q, %v", e.Error, err)
	}
}

func TestHTTPBackpressureRetryAfter(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single worker, then fill the one queue slot.
	busy, jerr := s.Submit(&JobRequest{Source: slowListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the busy job")
		}
		time.Sleep(time.Millisecond)
	}
	queued, jerr := s.Submit(&JobRequest{Source: slowListSrc + "\n", Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}

	resp := postJSON(t, ts.URL+"/jobs", &JobRequest{Source: remoteListSrc})
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("overflow = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	<-busy
	<-queued
}

// TestHTTPBatchNDJSON: a batch with duplicates and one invalid entry streams
// one line per entry; the duplicates share a single compile.
func TestHTTPBatchNDJSON(t *testing.T) {
	s := New(Config{Shards: 4, QueueDepth: 32})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batch := []JobRequest{
		{Source: remoteListSrc, Nodes: 2},
		{Source: remoteListSrc, Nodes: 2},
		{Benchmark: "nbody"}, // invalid: unknown benchmark
		{Source: remoteListSrc, Nodes: 2},
		{Benchmark: "perimeter", Quick: true, Nodes: 2},
	}
	resp := postJSON(t, ts.URL+"/jobs/batch", batch)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	type line struct {
		Index  int        `json:"index"`
		Status int        `json:"status"`
		Error  string     `json:"error"`
		Result *JobResult `json:"result"`
	}
	seen := map[int]line{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, dup := seen[l.Index]; dup {
			t.Errorf("index %d emitted twice", l.Index)
		}
		seen[l.Index] = l
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(batch) {
		t.Fatalf("got %d lines, want %d", len(seen), len(batch))
	}
	for _, i := range []int{0, 1, 3, 4} {
		if seen[i].Status != 200 || seen[i].Result == nil {
			t.Errorf("line %d: status=%d error=%q", i, seen[i].Status, seen[i].Error)
		}
	}
	if seen[2].Status != 400 || !strings.Contains(seen[2].Error, "nbody") {
		t.Errorf("invalid line = %+v", seen[2])
	}
	// The three identical entries were submitted before any outcome was
	// awaited, so they shared one compile.
	if a, b := canonical(t, seen[0].Result), canonical(t, seen[1].Result); a != b {
		t.Errorf("duplicate batch entries differ:\n%s\n%s", a, b)
	}
	if got := counterValue(s, "earthd_compiles_total"); got != 2 {
		t.Errorf("earthd_compiles_total = %d, want 2 (triplicate + perimeter)", got)
	}
}

// TestConcurrentScrapesDuringRuns is satellite 3: /metrics, /metrics.json,
// /healthz, and every shard's /series.json are scraped concurrently while
// jobs are in flight on all four shards. Run under -race (scripts/check.sh
// does) this exercises scrape-vs-run synchronization on the shard
// registries, recorders, and samplers.
func TestConcurrentScrapesDuringRuns(t *testing.T) {
	const shards = 4
	s := New(Config{Shards: shards, QueueDepth: 32})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Distinct slow sources (distinct hashes, no batching) so each worker
	// takes one and every shard has a run in flight, with tracing on to
	// exercise the recorders too.
	outs := make([]<-chan jobOutcome, 0, shards)
	for i := 0; i < shards; i++ {
		src := slowListSrc + strings.Repeat("\n", i)
		ch, jerr := s.Submit(&JobRequest{Source: src, Nodes: 2, TraceSummary: true})
		if jerr != nil {
			t.Fatalf("submit %d: %v", i, jerr)
		}
		outs = append(outs, ch)
	}

	paths := []string{"/metrics", "/metrics.json", "/healthz"}
	for i := 0; i < shards; i++ {
		paths = append(paths, fmt.Sprintf("/series.json?shard=%d", i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for _, path := range paths {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(5 * time.Millisecond):
					// Scrape continuously but don't starve the simulator
					// runs of CPU — the point is overlap, not throughput.
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("%s read: %v", path, err)
					return
				}
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
				if strings.HasSuffix(path, ".json") || path == "/healthz" ||
					strings.Contains(path, "series.json") {
					if !json.Valid(body) {
						errs <- fmt.Errorf("%s: invalid JSON", path)
						return
					}
				}
			}
		}(path)
	}

	for i, ch := range outs {
		select {
		case out := <-ch:
			if out.err != nil {
				t.Errorf("job %d: %v", i, out.err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("jobs never finished under scrape load")
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles the merged view must account for every run.
	if got := s.MergedRegistry().Counter("earth_runs_completed_total", "").Value(); got != shards {
		t.Errorf("earth_runs_completed_total = %d, want %d", got, shards)
	}
}

func TestHealthz(t *testing.T) {
	s := New(Config{Shards: 3, QueueDepth: 8})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, jerr := submitWait(t, s, &JobRequest{Source: remoteListSrc, Nodes: 2}); jerr != nil {
		t.Fatal(jerr)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status    string `json:"status"`
		Draining  bool   `json:"draining"`
		QueueCap  int    `json:"queue_cap"`
		Accepted  int64  `json:"accepted"`
		Completed int64  `json:"completed"`
		Shards    []struct {
			Shard int   `json:"shard"`
			Jobs  int64 `json:"jobs"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining || h.QueueCap != 8 {
		t.Errorf("health = %+v", h)
	}
	if h.Accepted != 1 || h.Completed != 1 || len(h.Shards) != 3 {
		t.Errorf("health counters = %+v", h)
	}
	var total int64
	for _, sh := range h.Shards {
		total += sh.Jobs
	}
	if total != 1 {
		t.Errorf("shard job counts sum to %d, want 1", total)
	}
}

func TestIndexPage(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"/jobs", "/metrics", "/healthz", "/series.json"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("index missing %q", want)
		}
	}
}
