package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the service's HTTP mux:
//
//	POST   /jobs        submit one JobRequest, respond with its JobResult
//	                    (or, with "async": true, 202 + the job id at once)
//	POST   /jobs/batch  submit a JSON array of JobRequests; the response
//	                    streams one NDJSON line per job as it completes
//	GET    /jobs/{id}   the job's lifecycle state; terminal states carry
//	                    the result or recorded error
//	GET    /jobs/{id}/timeline  the job's host-side span tree
//	                    (?format=json|text|chrome), live or retained
//	DELETE /jobs/{id}   request a cooperative abort of a queued/running job
//	GET    /debug/jobs  recent/slowest timelines + tail-latency attribution
//	GET    /buildinfo   binary identity (version, VCS revision, Go version)
//	GET    /metrics     Prometheus text: service + all shards + process,
//	                    merged into one exposition
//	GET    /metrics.json  the same merged registry as JSON
//	GET    /healthz     liveness, queue occupancy, shard + journal status
//	GET    /series.json?shard=N  the shard's current-run simulator time series
//
// Submission status codes: 200 success; 202 accepted (async) or cancelling;
// 400 malformed or invalid request; 422 well-formed but
// uncompilable/unrunnable program; 429 queue full or brownout (with
// Retry-After); 499 cancelled; 503 draining or journal failure (with
// Retry-After); 504 wall deadline exceeded.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "earthd compile-and-simulate service\n\n"+
			"POST   /jobs         submit one job (JSON; \"async\": true for 202 + poll)\n"+
			"POST   /jobs/batch   submit an array of jobs; NDJSON results stream back\n"+
			"GET    /jobs/{id}    job status (queued/running/done/cancelled)\n"+
			"GET    /jobs/{id}/timeline  host-side span tree (?format=json|text|chrome)\n"+
			"DELETE /jobs/{id}    abort a queued or running job\n"+
			"GET    /debug/jobs   recent/slowest timelines + tail-latency attribution\n"+
			"GET    /buildinfo    binary identity (version, VCS revision, Go) + config\n"+
			"GET    /metrics      aggregated Prometheus exposition\n"+
			"GET    /metrics.json aggregated registry as JSON\n"+
			"GET    /healthz      liveness + queue + shard + journal status\n"+
			"GET    /series.json  per-shard simulator time series (?shard=N)\n")
	})
	mux.HandleFunc("/jobs", s.handleJob)
	// POST-only: a method-less registration would conflict with the
	// GET /jobs/{id} wildcard below (neither pattern is more specific).
	mux.HandleFunc("POST /jobs/batch", s.handleBatch)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobDelete)
	mux.HandleFunc("GET /debug/jobs", s.handleDebugJobs)
	mux.HandleFunc("GET /buildinfo", s.handleBuildinfo)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.MergedRegistry().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.MergedRegistry().WriteJSON(w)
	})
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/series.json", s.handleSeries)
	return s.accessLog(mux)
}

// retryAfter stamps the backpressure hint on 429/503 responses, computed
// from the measured drain rate: the queue's current depth times the per-job
// service-time EWMA, divided across the shard workers. Before any job has
// completed (EWMA empty) the configured static hint applies.
func (s *Server) retryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
}

func (s *Server) retryAfterSecs() int {
	svc := s.svcEwmaNs.Load()
	if svc <= 0 {
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		return secs
	}
	est := int64(len(s.queue)+1) * svc / int64(len(s.shards))
	secs := int((est + int64(time.Second) - 1) / int64(time.Second))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// writeJobError renders a job-level failure as JSON with its status code.
func (s *Server) writeJobError(w http.ResponseWriter, jerr *jobError) {
	if jerr.status == 429 || jerr.status == 503 {
		s.retryAfter(w)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(jerr.status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{jerr.msg})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "POST a JobRequest JSON body", http.StatusMethodNotAllowed)
		return
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // schema v1: unknown fields are a 400, not silently dropped
	if err := dec.Decode(&req); err != nil {
		s.reject("invalid")
		s.writeJobError(w, errf(400, "bad request body: %v", err))
		return
	}
	sub, jerr := s.SubmitEx(&req)
	if jerr != nil {
		s.writeJobError(w, jerr)
		return
	}
	if req.Async {
		if sub.Served {
			// Already completed (exactly-once re-submission): the recorded
			// outcome is buffered, so "async" degenerates to the sync answer.
			s.respondOutcome(w, <-sub.Res)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(struct {
			JobID  string `json:"job_id"`
			Status string `json:"status"`
		}{sub.JobID, StatusQueued})
		return
	}
	select {
	case out := <-sub.Res:
		s.respondOutcome(w, out)
	case <-r.Context().Done():
		// Client gone. If this submission owns the job (it wasn't coalesced
		// onto another client's in-flight one), fire its cancellation so the
		// simulator stops promptly; the worker's buffered send still
		// completes and the 499 outcome is journaled like any other.
		if sub.Owner {
			_ = s.Cancel(sub.JobID, "client disconnected")
		}
	}
}

// respondOutcome renders a job outcome as the HTTP response.
func (s *Server) respondOutcome(w http.ResponseWriter, out jobOutcome) {
	if out.err != nil {
		s.writeJobError(w, out.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out.result)
}

// handleJobStatus reports a submission's lifecycle state; terminal states
// include the stored result (or the recorded error and its status code).
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	jid := r.PathValue("id")
	status, out, terminal, ok := s.JobStatus(jid)
	if !ok {
		s.writeJobError(w, errf(404, "unknown job %q", jid))
		return
	}
	resp := struct {
		JobID  string     `json:"job_id"`
		Status string     `json:"status"`
		Code   int        `json:"code,omitempty"`
		Error  string     `json:"error,omitempty"`
		Result *JobResult `json:"result,omitempty"`
	}{JobID: jid, Status: status}
	if terminal {
		if out.err != nil {
			resp.Code, resp.Error = out.err.status, out.err.msg
		} else {
			resp.Result = out.result
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleJobDelete requests a cooperative abort. 202: the cancellation fired
// and the job's 499 outcome will flow through the normal completion (and
// journaling) path; 404 unknown id; 409 already finished.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	jid := r.PathValue("id")
	if jerr := s.Cancel(jid, "client request"); jerr != nil {
		s.writeJobError(w, jerr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(struct {
		JobID  string `json:"job_id"`
		Status string `json:"status"`
	}{jid, "cancelling"})
}

// handleBatch accepts a JSON array of JobRequests and streams one NDJSON
// line per job in completion order (each line carries the submission index).
// Jobs the queue cannot accept are reported inline as error lines; the
// stream itself is always 200 once the array parses.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "POST a JSON array of JobRequests", http.StatusMethodNotAllowed)
		return
	}
	var reqs []JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // schema v1: unknown fields are a 400, not silently dropped
	if err := dec.Decode(&reqs); err != nil {
		s.reject("invalid")
		s.writeJobError(w, errf(400, "bad request body: %v", err))
		return
	}
	if len(reqs) == 0 {
		s.writeJobError(w, errf(400, "empty batch"))
		return
	}
	type line struct {
		Index  int        `json:"index"`
		Status int        `json:"status"`
		Error  string     `json:"error,omitempty"`
		Result *JobResult `json:"result,omitempty"`
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(l line) {
		enc.Encode(l)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Submit everything first so concurrent duplicates batch, then stream
	// outcomes in completion order.
	type pending struct {
		index int
		res   <-chan jobOutcome
	}
	done := make(chan line, len(reqs))
	inFlight := 0
	for i := range reqs {
		res, jerr := s.Submit(&reqs[i])
		if jerr != nil {
			emit(line{Index: i, Status: jerr.status, Error: jerr.msg})
			continue
		}
		inFlight++
		go func(p pending) {
			out := <-p.res
			if out.err != nil {
				done <- line{Index: p.index, Status: out.err.status, Error: out.err.msg}
				return
			}
			done <- line{Index: p.index, Status: 200, Result: out.result}
		}(pending{index: i, res: res})
	}
	for ; inFlight > 0; inFlight-- {
		select {
		case l := <-done:
			emit(l)
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	type shardHealth struct {
		Shard int   `json:"shard"`
		Jobs  int64 `json:"jobs"`
	}
	type journalHealth struct {
		// Lag counts records appended but not yet fsynced — the journal's
		// durability debt at this instant.
		Lag         int   `json:"lag"`
		Segments    int   `json:"segments"`
		PendingJobs int   `json:"pending_jobs"`
		Compactions int64 `json:"compactions"`
	}
	h := struct {
		Status    string `json:"status"`
		Draining  bool   `json:"draining"`
		UptimeMs  int64  `json:"uptime_ms"`
		QueueLen  int    `json:"queue_len"`
		QueueCap  int    `json:"queue_cap"`
		Accepted  int64  `json:"accepted"`
		Completed int64  `json:"completed"`
		// The measured EWMAs behind the backpressure decisions: service
		// time drives Retry-After, queue wait drives brownout shedding.
		SvcEwmaNs      int64          `json:"svc_ewma_ns"`
		QueueWaitEwma  int64          `json:"queue_wait_ewma_ns"`
		RetryAfterSecs int            `json:"retry_after_secs"`
		Journal        *journalHealth `json:"journal,omitempty"`
		Shards         []shardHealth  `json:"shards"`
	}{
		Status:         "ok",
		Draining:       s.Draining(),
		UptimeMs:       time.Since(s.start).Milliseconds(),
		QueueLen:       len(s.queue),
		QueueCap:       s.cfg.QueueDepth,
		Accepted:       s.accepted.Load(),
		Completed:      s.completed.Load(),
		SvcEwmaNs:      s.svcEwmaNs.Load(),
		QueueWaitEwma:  s.waitEwmaNs.Load(),
		RetryAfterSecs: s.retryAfterSecs(),
	}
	if h.Draining {
		h.Status = "draining"
	}
	if s.jr != nil {
		st := s.jr.Stats()
		h.Journal = &journalHealth{
			Lag:         st.Lag,
			Segments:    st.Segments,
			PendingJobs: st.PendingJobs,
			Compactions: st.Compactions,
		}
	}
	for _, sh := range s.shards {
		h.Shards = append(h.Shards, shardHealth{Shard: sh.id, Jobs: sh.jobs.Load()})
	}
	w.Header().Set("Content-Type", "application/json")
	if h.Draining {
		// A draining server is about to go away: load balancers should stop
		// routing to it, but the body still reports progress for operators.
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

// handleSeries serves one shard's current-run simulator time series — the
// same deterministic sampler surface as `earthrun -http`'s /series.json,
// per shard.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	shardIx := 0
	if v := r.URL.Query().Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n >= len(s.shards) {
			http.Error(w, fmt.Sprintf("shard must be in [0,%d)", len(s.shards)), http.StatusBadRequest)
			return
		}
		shardIx = n
	}
	w.Header().Set("Content-Type", "application/json")
	s.shards[shardIx].sampler.WriteSeriesJSON(w)
}
