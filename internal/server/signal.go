package server

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ShutdownOnSignal installs a SIGINT/SIGTERM handler that calls shutdown
// with a context bounded by timeout and delivers its error (nil on a clean
// drain) on the returned channel. A second signal during the drain aborts
// immediately with an error instead of waiting out the timeout.
//
// This is the graceful-shutdown helper shared by cmd/earthd (drain the job
// queue, then stop the HTTP server) and `earthrun -http` (stop the debug
// server): both block on the returned channel — earthd in main, earthrun in
// a watcher goroutine — so a signal always produces an orderly drain rather
// than the runtime's default hard kill.
func ShutdownOnSignal(timeout time.Duration, shutdown func(context.Context) error) <-chan error {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() {
		sig := <-sigs
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		done := make(chan error, 1)
		go func() { done <- shutdown(ctx) }()
		select {
		case err := <-done:
			errc <- err
		case sig2 := <-sigs:
			errc <- fmt.Errorf("%v during %v shutdown: aborting", sig2, sig)
		}
	}()
	return errc
}
