package server

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// remoteListSrc allocates a list on node 1 and walks it from node 0 — a
// small program with genuinely remote traffic that simulates in a few
// milliseconds.
const remoteListSrc = `
struct Point {
	double x;
	double y;
	double z;
	struct Point *next;
};

int main() {
	Point *head;
	Point *p;
	int i;
	double sum;
	head = NULL;
	for (i = 0; i < 30; i++) {
		p = alloc_on(Point, 1);
		p->x = dbl(i);
		p->y = dbl(i * 2);
		p->z = dbl(i * 3);
		p->next = head;
		head = p;
	}
	sum = 0.0;
	p = head;
	while (p != NULL) {
		sum = sum + p->x + p->y + p->z;
		p = p->next;
	}
	print_double(sum);
	return trunc(sum);
}
`

// slowListSrc is remoteListSrc with the walk repeated enough to keep one
// shard busy for >100ms of host time — comfortably wider than the
// goroutine-scheduling or loopback-HTTP latency several tests below lean
// on, but not so long that the race detector (which slows the simulator
// ~20x) pushes the suite past its deadline.
const slowListSrc = `
struct Point {
	double x;
	double y;
	double z;
	struct Point *next;
};

int main() {
	Point *head;
	Point *p;
	int i;
	int r;
	double sum;
	head = NULL;
	for (i = 0; i < 40; i++) {
		p = alloc_on(Point, 1);
		p->x = dbl(i);
		p->y = dbl(i * 2);
		p->z = dbl(i * 3);
		p->next = head;
		head = p;
	}
	sum = 0.0;
	for (r = 0; r < 2500; r++) {
		p = head;
		while (p != NULL) {
			sum = sum + p->x + p->y + p->z;
			p = p->next;
		}
	}
	print_double(sum);
	return 0;
}
`

// drainServer shuts s down, failing the test on a dirty drain.
func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// counterValue reads one counter from the merged scrape registry.
func counterValue(s *Server, name string) int64 {
	return s.MergedRegistry().Counter(name, "").Value()
}

// submitWait submits req and waits for its outcome.
func submitWait(t *testing.T, s *Server, req *JobRequest) (*JobResult, *jobError) {
	t.Helper()
	res, jerr := s.Submit(req)
	if jerr != nil {
		return nil, jerr
	}
	select {
	case out := <-res:
		return out.result, out.err
	case <-time.After(60 * time.Second):
		t.Fatal("job outcome never arrived")
		return nil, nil
	}
}

// canonical strips the per-submission bookkeeping and host-latency fields
// so two results can be compared for deterministic-payload equality.
func canonical(t *testing.T, r *JobResult) string {
	t.Helper()
	b, err := r.CanonicalPayload()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestBatchingSingleFlight: N identical concurrent submissions must share
// exactly one compile (counter-verified) and produce byte-identical
// deterministic payloads. Submit-time flight attachment makes this hold
// regardless of how the queue interleaves with the workers: the flight
// lives until the last attached job finishes executing, and the slow
// source keeps the first job executing far longer than the submission
// spread.
func TestBatchingSingleFlight(t *testing.T) {
	s := New(Config{Shards: 4, QueueDepth: 64})
	defer drainServer(t, s)

	const n = 12
	results := make([]*JobResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, jerr := submitWait(t, s, &JobRequest{Source: slowListSrc, Nodes: 4})
			if jerr != nil {
				t.Errorf("job %d: %v", i, jerr)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if got := counterValue(s, "earthd_compiles_total"); got != 1 {
		t.Errorf("earthd_compiles_total = %d, want 1 (all %d submissions batched)", got, n)
	}
	if got := counterValue(s, "earthd_batch_shared_total"); got != n-1 {
		t.Errorf("earthd_batch_shared_total = %d, want %d", got, n-1)
	}
	batched := 0
	want := canonical(t, results[0])
	for i, r := range results {
		if r.Batched {
			batched++
		}
		if got := canonical(t, r); got != want {
			t.Errorf("job %d payload differs:\n got %s\nwant %s", i, got, want)
		}
		if r.SourceHash == "" || !strings.HasPrefix(r.SourceHash, "sha256:") {
			t.Errorf("job %d: bad source hash %q", i, r.SourceHash)
		}
	}
	if batched != n-1 {
		t.Errorf("%d results marked batched, want %d", batched, n-1)
	}
}

// TestBatchingDistinctSourcesCompileSeparately: the flight key includes the
// source hash and the compile options, so distinct programs — or the same
// program at different optimization settings — never share a unit.
func TestBatchingDistinctSourcesCompileSeparately(t *testing.T) {
	s := New(Config{Shards: 2, QueueDepth: 16})
	defer drainServer(t, s)

	off := false
	var wg sync.WaitGroup
	for _, req := range []*JobRequest{
		{Source: remoteListSrc, Nodes: 2},
		{Source: remoteListSrc, Nodes: 2, Optimize: &off},
		{Source: remoteListSrc + "\n", Nodes: 2}, // distinct hash
	} {
		wg.Add(1)
		go func(req *JobRequest) {
			defer wg.Done()
			if _, jerr := submitWait(t, s, req); jerr != nil {
				t.Errorf("submit: %v", jerr)
			}
		}(req)
	}
	wg.Wait()
	if got := counterValue(s, "earthd_compiles_total"); got != 3 {
		t.Errorf("earthd_compiles_total = %d, want 3 distinct compiles", got)
	}
}

// TestDrainLosesNoAcceptedJob: every job accepted before Drain produces an
// outcome, and submissions after Drain are refused with 503.
func TestDrainLosesNoAcceptedJob(t *testing.T) {
	s := New(Config{Shards: 4, QueueDepth: 64})

	const n = 16
	type res struct {
		i   int
		out jobOutcome
	}
	outs := make(chan res, n)
	for i := 0; i < n; i++ {
		// Mix sources so several flights and all shards are exercised.
		src := remoteListSrc
		if i%3 == 0 {
			src = slowListSrc
		}
		ch, jerr := s.Submit(&JobRequest{Source: src, Nodes: 2})
		if jerr != nil {
			t.Fatalf("submit %d refused: %v", i, jerr)
		}
		go func(i int, ch <-chan jobOutcome) { outs <- res{i, <-ch} }(i, ch)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	if _, jerr := s.Submit(&JobRequest{Source: remoteListSrc}); jerr == nil || jerr.status != 503 {
		t.Errorf("post-drain submit: got %v, want 503", jerr)
	}

	for i := 0; i < n; i++ {
		select {
		case r := <-outs:
			if r.out.err != nil {
				t.Errorf("job %d failed: %v", r.i, r.out.err)
			} else if r.out.result.Output == "" {
				t.Errorf("job %d: empty output", r.i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d accepted jobs produced outcomes after drain", i, n)
		}
	}
	if acc, comp := s.accepted.Load(), s.completed.Load(); acc != n || comp != n {
		t.Errorf("accepted=%d completed=%d, want %d/%d", acc, comp, n, n)
	}
}

// TestValidationErrors: malformed requests are refused before queueing.
func TestValidationErrors(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4})
	defer drainServer(t, s)

	cases := []struct {
		name string
		req  *JobRequest
		want int
	}{
		{"empty", &JobRequest{}, 400},
		{"both", &JobRequest{Source: "int main() { return 0; }", Benchmark: "power"}, 400},
		{"unknown-benchmark", &JobRequest{Benchmark: "nbody"}, 400},
		{"bad-cost", &JobRequest{Source: "int main() { return 0; }", Cost: "NetLatency=purple"}, 400},
		{"bad-faults", &JobRequest{Source: "int main() { return 0; }", Faults: "drop=2.5"}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, jerr := s.Submit(tc.req); jerr == nil || jerr.status != tc.want {
				t.Errorf("got %v, want status %d", jerr, tc.want)
			}
		})
	}

	// A well-formed but uncompilable program is accepted, then fails 422.
	if _, jerr := submitWait(t, s, &JobRequest{Source: "int main( {"}); jerr == nil || jerr.status != 422 {
		t.Errorf("compile error: got %v, want 422", jerr)
	}
	// A runnable failure (sequential on >1 node) also maps to 422.
	if _, jerr := submitWait(t, s, &JobRequest{Source: "int main() { return 0; }", Sequential: true, Nodes: 2}); jerr == nil || jerr.status != 422 {
		t.Errorf("run error: got %v, want 422", jerr)
	}
}

// TestBenchmarkJob: named Olden jobs expand server-side, so batching by
// source hash applies across clients naming the same benchmark.
func TestBenchmarkJob(t *testing.T) {
	s := New(Config{Shards: 2, QueueDepth: 8})
	defer drainServer(t, s)

	r, jerr := submitWait(t, s, &JobRequest{Benchmark: "power", Quick: true, Nodes: 2})
	if jerr != nil {
		t.Fatalf("power: %v", jerr)
	}
	if r.Benchmark != "power" || r.Name != "power.ec" {
		t.Errorf("result identity = %q/%q", r.Benchmark, r.Name)
	}
	if r.TimeNs <= 0 || r.Output == "" {
		t.Errorf("implausible result: time=%d output=%q", r.TimeNs, r.Output)
	}
	if !r.Optimized {
		t.Error("default job should be optimized")
	}
}

// TestTraceSummaryPerJob: a traced job returns the text summary and the
// compact digest, and tracing one job does not leak into the next.
func TestTraceSummaryPerJob(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 8})
	defer drainServer(t, s)

	r, jerr := submitWait(t, s, &JobRequest{Source: remoteListSrc, Nodes: 4, TraceSummary: true})
	if jerr != nil {
		t.Fatalf("traced job: %v", jerr)
	}
	if !strings.Contains(r.TraceSummary, "trace summary:") {
		t.Errorf("missing text summary: %q", r.TraceSummary)
	}
	if r.Trace == nil || r.Trace.Msgs == 0 || r.Trace.Nodes != 4 {
		t.Errorf("implausible trace digest: %+v", r.Trace)
	}
	if r.Trace.LatencyP95Ns < r.Trace.LatencyP50Ns {
		t.Errorf("p95 %d < p50 %d", r.Trace.LatencyP95Ns, r.Trace.LatencyP50Ns)
	}

	// The next untraced job on the same shard must carry no trace fields.
	r2, jerr := submitWait(t, s, &JobRequest{Source: remoteListSrc, Nodes: 4})
	if jerr != nil {
		t.Fatalf("untraced job: %v", jerr)
	}
	if r2.TraceSummary != "" || r2.Trace != nil {
		t.Error("untraced job leaked trace data")
	}
}

// TestFaultedJobDeterminism: the same faulted request twice produces
// identical deterministic payloads, and the fault stats surface.
func TestFaultedJobDeterminism(t *testing.T) {
	s := New(Config{Shards: 2, QueueDepth: 8})
	defer drainServer(t, s)

	req := func() *JobRequest {
		return &JobRequest{Source: remoteListSrc, Nodes: 4,
			Faults: "drop=0.05,dup=0.02,delay=2", FaultSeed: 7}
	}
	a, jerr := submitWait(t, s, req())
	if jerr != nil {
		t.Fatalf("faulted job: %v", jerr)
	}
	b, jerr := submitWait(t, s, req())
	if jerr != nil {
		t.Fatalf("faulted job: %v", jerr)
	}
	if a.Faults == nil || a.Faults.Drops == 0 {
		t.Errorf("no faults recorded: %+v", a.Faults)
	}
	if ca, cb := canonical(t, a), canonical(t, b); ca != cb {
		t.Errorf("faulted payloads differ:\n%s\n%s", ca, cb)
	}
}

// TestMergedMetrics: the scrape aggregates service counters, per-shard
// pipeline registries, and process metrics into one exposition.
func TestMergedMetrics(t *testing.T) {
	s := New(Config{Shards: 3, QueueDepth: 16})
	defer drainServer(t, s)

	const n = 9
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct sources so every job compiles and runs.
			src := remoteListSrc + strings.Repeat("\n", i)
			if _, jerr := submitWait(t, s, &JobRequest{Source: src, Nodes: 2}); jerr != nil {
				t.Errorf("job %d: %v", i, jerr)
			}
		}(i)
	}
	wg.Wait()

	m := s.MergedRegistry()
	if got := m.Counter("earth_runs_completed_total", "").Value(); got != n {
		t.Errorf("aggregated earth_runs_completed_total = %d, want %d (summed across shards)", got, n)
	}
	if got := m.Counter("earthd_jobs_completed_total", "").Value(); got != n {
		t.Errorf("earthd_jobs_completed_total = %d, want %d", got, n)
	}
	if got := m.Gauge("process_goroutines", "").Value(); got <= 0 {
		t.Errorf("process_goroutines = %d, want > 0", got)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"earthd_compiles_total", "earthd_queue_wait_ns", "earth_compile_ns",
		"process_heap_alloc_bytes", "process_gc_cycles_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("merged exposition missing %q", want)
		}
	}
}

// TestFuelCapApplies: the service-level instruction cap bounds jobs that
// ask for no limit, so a runaway program cannot pin a shard.
func TestFuelCapApplies(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4, MaxFuel: 10_000})
	defer drainServer(t, s)

	_, jerr := submitWait(t, s, &JobRequest{Source: slowListSrc, Nodes: 2})
	if jerr == nil || jerr.status != 422 || !strings.Contains(jerr.msg, "fuel") {
		t.Errorf("got %v, want 422 fuel exhaustion", jerr)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Shards < 1 || cfg.Shards > 8 {
		t.Errorf("default shards = %d", cfg.Shards)
	}
	if cfg.QueueDepth != 64 || cfg.DefaultNodes != 4 || cfg.MaxFuel != 500_000_000 {
		t.Errorf("defaults = %+v", cfg)
	}
	neg := Config{MaxFuel: -1}.withDefaults()
	if neg.MaxFuel != -1 {
		t.Errorf("negative MaxFuel (unlimited) not preserved: %d", neg.MaxFuel)
	}
}

// TestBackpressure429: with one busy shard and a one-deep queue, the third
// concurrent submission is refused with 429 until capacity frees up.
func TestBackpressure429(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 1})
	defer drainServer(t, s)

	// Occupy the worker with a slow job, then fill the queue.
	busy, jerr := s.Submit(&JobRequest{Source: slowListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatalf("busy job refused: %v", jerr)
	}
	// Wait until the worker has dequeued the busy job so the queue slot is
	// genuinely free for the filler.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the busy job")
		}
		time.Sleep(time.Millisecond)
	}
	queued, jerr := s.Submit(&JobRequest{Source: slowListSrc + "\n", Nodes: 2})
	if jerr != nil {
		t.Fatalf("queued job refused: %v", jerr)
	}
	if _, jerr := s.Submit(&JobRequest{Source: slowListSrc + "\n\n", Nodes: 2}); jerr == nil || jerr.status != 429 {
		t.Fatalf("overflow submit: got %v, want 429", jerr)
	}
	if got := counterValue(s, `earthd_jobs_rejected_total{reason="queue_full"}`); got != 1 {
		t.Errorf("queue_full rejections = %d, want 1", got)
	}
	for _, ch := range []<-chan jobOutcome{busy, queued} {
		if out := <-ch; out.err != nil {
			t.Errorf("accepted job failed: %v", out.err)
		}
	}
}

// TestRejectedFlightReleased: a 429-rejected duplicate must not leave a
// dangling ref that pins the flight entry (and its unit) forever.
func TestRejectedFlightReleased(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 1})
	defer drainServer(t, s)

	busy, jerr := s.Submit(&JobRequest{Source: slowListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the busy job")
		}
		time.Sleep(time.Millisecond)
	}
	queued, jerr := s.Submit(&JobRequest{Source: remoteListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	if _, jerr := s.Submit(&JobRequest{Source: remoteListSrc, Nodes: 2}); jerr == nil || jerr.status != 429 {
		t.Fatalf("want 429, got %v", jerr)
	}
	<-busy
	<-queued
	s.fmu.Lock()
	n := len(s.flights)
	s.fmu.Unlock()
	if n != 0 {
		t.Errorf("%d flight entries leaked after all jobs completed", n)
	}
}

func TestCompileKeyShape(t *testing.T) {
	a := compileKey("sha256:aa", true, "")
	b := compileKey("sha256:aa", false, "")
	c := compileKey("sha256:bb", true, "")
	d := compileKey("sha256:aa", true, "bypass")
	if a == b || a == c || b == c || a == d {
		t.Errorf("compile keys collide: %q %q %q %q", a, b, c, d)
	}
	if !strings.Contains(a, "sha256:aa") {
		t.Errorf("key %q lost the hash", a)
	}
}

// TestSchemaVersion: v0 (absent) and v1 jobs are accepted; anything newer
// is a 400 so an old server never silently misreads a newer client.
func TestSchemaVersion(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4})
	defer drainServer(t, s)

	if _, jerr := submitWait(t, s, &JobRequest{V: 1, Source: remoteListSrc, Nodes: 2}); jerr != nil {
		t.Errorf("v1 job rejected: %v", jerr)
	}
	for _, v := range []int{2, 99, -1} {
		if _, jerr := s.Submit(&JobRequest{V: v, Source: remoteListSrc}); jerr == nil || jerr.status != 400 {
			t.Errorf("v=%d: got %v, want 400", v, jerr)
		}
	}
}

// TestCachePolicyValidation: the cache policy field accepts exactly "",
// "bypass", and "no-store".
func TestCachePolicyValidation(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4})
	defer drainServer(t, s)

	for _, ok := range []string{"", "bypass", "no-store"} {
		if _, jerr := submitWait(t, s, &JobRequest{Source: remoteListSrc, Nodes: 2, Cache: ok}); jerr != nil {
			t.Errorf("cache=%q rejected: %v", ok, jerr)
		}
	}
	if _, jerr := s.Submit(&JobRequest{Source: remoteListSrc, Cache: "aggressive"}); jerr == nil || jerr.status != 400 {
		t.Errorf("bad cache policy: got %v, want 400", jerr)
	}
}

// TestRepeatedDuplicatesHitCache: sequential identical submissions (no
// concurrency, so single-flight batching cannot help) must compile once and
// serve the repeats from the shared unit cache — the counters in the merged
// scrape prove it.
func TestRepeatedDuplicatesHitCache(t *testing.T) {
	s := New(Config{Shards: 2, QueueDepth: 8})
	defer drainServer(t, s)

	const n = 4
	results := make([]*JobResult, n)
	for i := 0; i < n; i++ {
		r, jerr := submitWait(t, s, &JobRequest{Source: remoteListSrc, Nodes: 4})
		if jerr != nil {
			t.Fatalf("job %d: %v", i, jerr)
		}
		results[i] = r
	}
	if got := counterValue(s, "earthd_compiles_total"); got != 1 {
		t.Errorf("earthd_compiles_total = %d after %d identical jobs, want 1", got, n)
	}
	if got := counterValue(s, "earth_cache_hits_total"); got != n-1 {
		t.Errorf("earth_cache_hits_total = %d, want %d", got, n-1)
	}
	if got := counterValue(s, "earth_cache_misses_total"); got != 1 {
		t.Errorf("earth_cache_misses_total = %d, want 1", got)
	}
	for i := 1; i < n; i++ {
		if a, b := canonical(t, results[0]), canonical(t, results[i]); a != b {
			t.Errorf("cached job %d payload differs:\n%s\nvs\n%s", i, a, b)
		}
	}

	// A bypass job against the warm cache compiles cold.
	if _, jerr := submitWait(t, s, &JobRequest{Source: remoteListSrc, Nodes: 4, Cache: "bypass"}); jerr != nil {
		t.Fatal(jerr)
	}
	if got := counterValue(s, "earthd_compiles_total"); got != 2 {
		t.Errorf("earthd_compiles_total = %d after bypass job, want 2", got)
	}
}

// TestCacheDisabled: CacheSize < 0 turns the shared cache off; every
// sequential duplicate compiles.
func TestCacheDisabled(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4, CacheSize: -1})
	defer drainServer(t, s)

	for i := 0; i < 2; i++ {
		if _, jerr := submitWait(t, s, &JobRequest{Source: remoteListSrc, Nodes: 2}); jerr != nil {
			t.Fatal(jerr)
		}
	}
	if got := counterValue(s, "earthd_compiles_total"); got != 2 {
		t.Errorf("earthd_compiles_total = %d with caching disabled, want 2", got)
	}
}

func TestResolveDefaults(t *testing.T) {
	name, quickSrc, jerr := resolve(&JobRequest{Benchmark: "tsp", Quick: true})
	if jerr != nil {
		t.Fatal(jerr)
	}
	if name != "tsp.ec" || !strings.Contains(quickSrc, "main") {
		t.Errorf("resolve(tsp) = %q, %d bytes", name, len(quickSrc))
	}
	_, fullSrc, jerr := resolve(&JobRequest{Benchmark: "tsp"})
	if jerr != nil {
		t.Fatal(jerr)
	}
	if fullSrc == quickSrc {
		t.Error("quick and full tsp sources should differ")
	}
	if _, src2, _ := resolve(&JobRequest{Benchmark: "tsp", Quick: true}); src2 != quickSrc {
		t.Error("resolve not deterministic")
	}
	if _, _, jerr := resolve(&JobRequest{Benchmark: "power", Name: "my.ec"}); jerr != nil {
		t.Errorf("custom name: %v", jerr)
	}
}

func TestJobErrorFormat(t *testing.T) {
	e := errf(429, "queue full (%d jobs deep); retry later", 64)
	if e.status != 429 || !strings.Contains(e.Error(), "64") {
		t.Errorf("errf = %+v", e)
	}
	if fmt.Sprintf("%v", e) != e.msg {
		t.Error("jobError should print its message")
	}
}
