package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
)

// openServer opens a journaled server, failing the test on error.
func openServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitStatus polls JobStatus until the job reaches want (or times out).
func waitStatus(t *testing.T, s *Server, jid, want string) jobOutcome {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		status, out, _, ok := s.JobStatus(jid)
		if ok && status == want {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %q never reached %q (last: %q, known=%t)", jid, want, status, ok)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJournalRecoveryServesCompleted: a completed job's payload survives a
// restart and answers a re-submission of its id byte-identically, without
// re-running — the exactly-once half of the durability contract.
func TestJournalRecoveryServesCompleted(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, QueueDepth: 8, JournalDir: dir}

	s1 := openServer(t, cfg)
	req := &JobRequest{ID: "job-a", Source: remoteListSrc, Nodes: 2}
	r1, jerr := submitWait(t, s1, req)
	if jerr != nil {
		t.Fatal(jerr)
	}
	if r1.JobID != "job-a" || r1.Replayed {
		t.Fatalf("fresh run: job_id=%q replayed=%t", r1.JobID, r1.Replayed)
	}
	runs := counterValue(s1, "earthd_jobs_completed_total")
	drainServer(t, s1)

	s2 := openServer(t, cfg)
	defer drainServer(t, s2)
	sub, jerr := s2.SubmitEx(&JobRequest{ID: "job-a", Source: remoteListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !sub.Served {
		t.Fatal("re-submission after restart was not served from the journal")
	}
	out := <-sub.Res
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !out.result.Replayed {
		t.Error("served result not marked replayed")
	}
	if a, b := canonical(t, r1), canonical(t, out.result); a != b {
		t.Errorf("replayed payload differs from the original:\n%s\n%s", a, b)
	}
	if got := counterValue(s2, "earthd_jobs_completed_total"); got != 0 {
		t.Errorf("restart re-ran the job (%d completions, want 0; original process ran %d)", got, runs)
	}
	if status, _, terminal, ok := s2.JobStatus("job-a"); !ok || !terminal || status != StatusDone {
		t.Errorf("JobStatus after restart = %q terminal=%t ok=%t", status, terminal, ok)
	}
}

// TestJournalRecoveryContentHashKey: without a client-supplied id, the
// journal keys the job by the request's content hash, so the *same request*
// is deduplicated across a restart.
func TestJournalRecoveryContentHashKey(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, QueueDepth: 8, JournalDir: dir}

	s1 := openServer(t, cfg)
	r1, jerr := submitWait(t, s1, &JobRequest{Source: remoteListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !strings.HasPrefix(r1.JobID, "sha256:") {
		t.Fatalf("content-hash job id = %q", r1.JobID)
	}
	drainServer(t, s1)

	s2 := openServer(t, cfg)
	defer drainServer(t, s2)
	sub, jerr := s2.SubmitEx(&JobRequest{Source: remoteListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !sub.Served || sub.JobID != r1.JobID {
		t.Fatalf("identical request after restart: served=%t job_id=%q (want %q)",
			sub.Served, sub.JobID, r1.JobID)
	}
	out := <-sub.Res
	if out.err != nil || !out.result.Replayed {
		t.Fatalf("outcome = %+v", out)
	}
}

// TestJournalRecoveryReplaysPending: an accepted-but-unfinished job in the
// journal (a crash between the 202 and completion) re-enters the queue on
// open and runs to completion — the no-lost-jobs half of the contract.
func TestJournalRecoveryReplaysPending(t *testing.T) {
	dir := t.TempDir()
	b, err := json.Marshal(&JobRequest{Source: remoteListSrc, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	jr, _, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Accepted("pend-1", b); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	s := openServer(t, Config{Shards: 1, QueueDepth: 8, JournalDir: dir})
	out := waitStatus(t, s, "pend-1", StatusDone)
	if out.err != nil {
		t.Fatalf("replayed job failed: %v", out.err)
	}
	if out.result == nil || !out.result.Replayed {
		t.Fatalf("replayed outcome = %+v", out)
	}
	if got := counterValue(s, "earthd_jobs_replayed_total"); got != 1 {
		t.Errorf("earthd_jobs_replayed_total = %d, want 1", got)
	}
	drainServer(t, s)

	// After the drain the completion is durable: a third process serves it.
	s2 := openServer(t, Config{Shards: 1, QueueDepth: 8, JournalDir: dir})
	defer drainServer(t, s2)
	if status, _, _, ok := s2.JobStatus("pend-1"); !ok || status != StatusDone {
		t.Errorf("third open: status=%q ok=%t", status, ok)
	}
}

// TestJournalRecoveryUnreplayable: a journaled acceptance that no longer
// validates is closed out as cancelled instead of wedging recovery.
func TestJournalRecoveryUnreplayable(t *testing.T) {
	dir := t.TempDir()
	jr, _, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Accepted("bad-1", []byte(`{"benchmark":"no-such-benchmark"}`)); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	s := openServer(t, Config{Shards: 1, QueueDepth: 8, JournalDir: dir})
	drainServer(t, s)
	_, rec, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 0 {
		t.Errorf("unreplayable job still pending: %+v", rec.Pending)
	}
	if _, ok := rec.Cancelled["bad-1"]; !ok {
		t.Error("unreplayable job not recorded as cancelled")
	}
}

// TestCancelQueuedJob: cancelling a job the workers have not reached yet
// resolves it with 499 without executing anything.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4})
	defer drainServer(t, s)

	busy, jerr := s.Submit(&JobRequest{Source: slowListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the busy job")
		}
		time.Sleep(time.Millisecond)
	}
	sub, jerr := s.SubmitEx(&JobRequest{ID: "victim", Source: remoteListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	if jerr := s.Cancel("victim", "test abort"); jerr != nil {
		t.Fatal(jerr)
	}
	out := <-sub.Res
	if out.err == nil || out.err.status != 499 {
		t.Fatalf("cancelled outcome = %+v, want 499", out)
	}
	if !strings.Contains(out.err.msg, "test abort") {
		t.Errorf("cancellation reason lost: %q", out.err.msg)
	}
	if status, _, _, ok := s.JobStatus("victim"); !ok || status != StatusCancelled {
		t.Errorf("status = %q ok=%t, want cancelled", status, ok)
	}
	// Cancelling a finished job is a conflict, not a repeat cancellation.
	if jerr := s.Cancel("victim", "again"); jerr == nil || jerr.status != 409 {
		t.Errorf("second cancel = %+v, want 409", jerr)
	}
	<-busy
}

// TestCancelRunningJobHTTP drives the full async lifecycle over HTTP:
// 202 on submit, "running" from GET, 202 from DELETE, "cancelled" with a
// 499 code once the simulator traps at its next cancellation poll.
func TestCancelRunningJobHTTP(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/jobs", &JobRequest{ID: "run-1", Source: slowListSrc, Nodes: 2, Async: true})
	if resp.StatusCode != 202 {
		t.Fatalf("async submit = %d, want 202", resp.StatusCode)
	}
	var acc struct {
		JobID  string `json:"job_id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if acc.JobID != "run-1" || acc.Status != StatusQueued {
		t.Fatalf("accept body = %+v", acc)
	}

	type statusResp struct {
		JobID  string     `json:"job_id"`
		Status string     `json:"status"`
		Code   int        `json:"code"`
		Error  string     `json:"error"`
		Result *JobResult `json:"result"`
	}
	getStatus := func() statusResp {
		t.Helper()
		resp, err := http.Get(ts.URL + "/jobs/run-1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET /jobs/run-1 = %d", resp.StatusCode)
		}
		var sr statusResp
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	deadline := time.Now().Add(30 * time.Second)
	for getStatus().Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/run-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 202 {
		t.Fatalf("DELETE = %d, want 202", dresp.StatusCode)
	}

	for {
		sr := getStatus()
		if sr.Status == StatusCancelled {
			if sr.Code != 499 || sr.Error == "" {
				t.Fatalf("cancelled status = %+v, want code 499", sr)
			}
			break
		}
		if sr.Status == StatusDone {
			t.Fatal("job finished before the cancellation landed; make slowListSrc slower")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached cancelled")
		}
		time.Sleep(time.Millisecond)
	}

	// Unknown and finished ids map to 404 and 409.
	del, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/nope", nil)
	if dresp, err = http.DefaultClient.Do(del); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 404 {
		t.Errorf("DELETE unknown = %d, want 404", dresp.StatusCode)
	}
	del, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/run-1", nil)
	if dresp, err = http.DefaultClient.Do(del); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 409 {
		t.Errorf("DELETE finished = %d, want 409", dresp.StatusCode)
	}
}

// TestJobWallDeadline: a job that exceeds the server's wall-clock budget is
// aborted cooperatively and answers 504.
func TestJobWallDeadline(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4, JobWallDeadline: 20 * time.Millisecond})
	defer drainServer(t, s)
	res, jerr := s.Submit(&JobRequest{Source: slowListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	out := <-res
	if out.err == nil || out.err.status != 504 {
		t.Fatalf("outcome = %+v, want 504", out)
	}
}

// TestCancelledJournaledAndRerunnable: a cancelled job's record lands in the
// journal, and explicitly re-submitting the same id runs fresh — the
// cancellation closed that attempt, not the id.
func TestCancelledJournaledAndRerunnable(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, QueueDepth: 8, JournalDir: dir, JobWallDeadline: 20 * time.Millisecond}
	s := openServer(t, cfg)
	res, jerr := s.Submit(&JobRequest{ID: "flaky", Source: slowListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	if out := <-res; out.err == nil || out.err.status != 504 {
		t.Fatalf("outcome = %+v, want 504", out)
	}
	drainServer(t, s)

	// Restart without the tight deadline: the id is free to run again.
	s2 := openServer(t, Config{Shards: 1, QueueDepth: 8, JournalDir: dir})
	defer drainServer(t, s2)
	r, jerr := submitWait(t, s2, &JobRequest{ID: "flaky", Source: remoteListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatalf("re-run after cancellation: %v", jerr)
	}
	if r.Replayed {
		t.Error("re-run was served from the cancelled record")
	}
}

// TestBrownoutShedsTraceJobs: once measured queue wait exceeds
// BrownoutAfter, trace-enabled jobs are shed with 429 while plain jobs are
// still accepted.
func TestBrownoutShedsTraceJobs(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 8, BrownoutAfter: time.Nanosecond})
	defer drainServer(t, s)

	// Seed the queue-wait EWMA (any executed job has nonzero wait).
	if _, jerr := submitWait(t, s, &JobRequest{Source: remoteListSrc, Nodes: 2}); jerr != nil {
		t.Fatal(jerr)
	}
	// Occupy the worker and one queue slot so the queue is non-empty.
	busy, jerr := s.Submit(&JobRequest{Source: slowListSrc, Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the busy job")
		}
		time.Sleep(time.Millisecond)
	}
	queued, jerr := s.Submit(&JobRequest{Source: slowListSrc + "\n", Nodes: 2})
	if jerr != nil {
		t.Fatal(jerr)
	}

	_, jerr = s.Submit(&JobRequest{Source: remoteListSrc, Nodes: 2, TraceSummary: true})
	if jerr == nil || jerr.status != 429 || !strings.Contains(jerr.msg, "brownout") {
		t.Fatalf("trace job under brownout = %+v, want 429 brownout", jerr)
	}
	plain, jerr := s.Submit(&JobRequest{Source: remoteListSrc + "\n", Nodes: 2})
	if jerr != nil {
		t.Fatalf("plain job under brownout rejected: %v", jerr)
	}
	if got := counterValue(s, `earthd_jobs_rejected_total{reason="brownout"}`); got != 1 {
		t.Errorf("brownout rejection counter = %d, want 1", got)
	}
	<-busy
	<-queued
	<-plain
}

// TestRetryAfterMeasured: the Retry-After hint tracks the measured drain
// rate — queue depth × service-time EWMA over the shard count, clamped to
// [1, 60], falling back to the configured constant before any measurement.
func TestRetryAfterMeasured(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 8, RetryAfter: 3 * time.Second})
	defer drainServer(t, s)

	if got := s.retryAfterSecs(); got != 3 {
		t.Errorf("empty EWMA: Retry-After = %d, want configured 3", got)
	}
	s.svcEwmaNs.Store(int64(1500 * time.Millisecond)) // 1.5s/job, empty queue
	if got := s.retryAfterSecs(); got != 2 {
		t.Errorf("1.5s EWMA: Retry-After = %d, want ceil to 2", got)
	}
	s.svcEwmaNs.Store(int64(200 * time.Second))
	if got := s.retryAfterSecs(); got != 60 {
		t.Errorf("huge EWMA: Retry-After = %d, want clamp 60", got)
	}
}

// TestAsyncServedAfterCompletion: re-submitting a completed id with
// async=true answers the stored result immediately (200, replayed) instead
// of a useless 202.
func TestAsyncServedAfterCompletion(t *testing.T) {
	dir := t.TempDir()
	s := openServer(t, Config{Shards: 1, QueueDepth: 8, JournalDir: dir})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &JobRequest{ID: "async-1", Source: remoteListSrc, Nodes: 2}
	if _, jerr := submitWait(t, s, req); jerr != nil {
		t.Fatal(jerr)
	}
	resp := postJSON(t, ts.URL+"/jobs", &JobRequest{ID: "async-1", Source: remoteListSrc, Nodes: 2, Async: true})
	r := decodeResult(t, resp)
	if !r.Replayed || r.JobID != "async-1" {
		t.Errorf("served async result = %+v", r)
	}
}

// TestHealthzJournal: with journaling on, /healthz carries the journal
// section (lag, segments, pending) used by operators and the chaos harness.
func TestHealthzJournal(t *testing.T) {
	dir := t.TempDir()
	s := openServer(t, Config{Shards: 1, QueueDepth: 8, JournalDir: dir})
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, jerr := submitWait(t, s, &JobRequest{ID: "h-1", Source: remoteListSrc, Nodes: 2}); jerr != nil {
		t.Fatal(jerr)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string `json:"status"`
		Journal *struct {
			Lag         int `json:"lag"`
			Segments    int `json:"segments"`
			PendingJobs int `json:"pending_jobs"`
		} `json:"journal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Journal == nil {
		t.Fatal("healthz missing journal section")
	}
	if h.Journal.Segments < 1 || h.Journal.PendingJobs != 0 {
		t.Errorf("journal health = %+v", *h.Journal)
	}
}

// TestHealthzDraining503: a draining server fails its health check so load
// balancers stop routing to it, while the body still reports progress.
func TestHealthzDraining503(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	drainServer(t, s)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("status = %q", h.Status)
	}
}

// TestBadClientID: malformed idempotency keys are a 400 before any state is
// touched.
func TestBadClientID(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 4})
	defer drainServer(t, s)
	for _, id := range []string{strings.Repeat("x", 201), "has space", "ctrl\x01char"} {
		_, jerr := s.Submit(&JobRequest{ID: id, Source: remoteListSrc, Nodes: 2})
		if jerr == nil || jerr.status != 400 {
			t.Errorf("id %q: %+v, want 400", fmt.Sprintf("%.12s…", id), jerr)
		}
	}
}
