// Package trace is the observability layer of the EARTH-MANNA simulator:
// a zero-cost-when-disabled event sink that records per-message lifecycle
// events (EU issue → SU service → wire → remote SU → reply), per-node
// EU/SU busy intervals, and per-link network traffic, every event stamped
// with simulated time, node, fiber, message class, payload words, and the
// SIMPLE site key of the instruction that caused it (see simple.AssignSites
// and internal/profile for the site-key scheme).
//
// The contract with the simulator is strictly observational: a Recorder
// never feeds back into the cost model or the event schedule, so a run with
// tracing enabled produces a bit-identical Result (Time, Counts, Output,
// MainRet, Profile) to the same run without it — internal/earthsim's tests
// enforce this. With no Recorder attached the simulator pays only a nil
// check per instrumentation point.
//
// Two exporters consume a recording: WriteChrome emits Chrome trace_event
// JSON (load in chrome://tracing or Perfetto), and Summarize reduces the
// event stream to per-message-class latency histograms, per-site operation
// counts, SU queue statistics, and per-link network utilization.
package trace

import "sync"

// Class enumerates the simulator's message classes (the kinds of traffic a
// node's SU and the network carry).
type Class int

// Message classes.
const (
	ClassGet    Class = iota // split-phase scalar read request + reply
	ClassPut                 // split-phase scalar write + ack
	ClassBlkGet              // block read request + payload reply
	ClassBlkPut              // block write payload + ack
	ClassAlloc               // remote allocation request + address reply
	ClassRPC                 // remote function invocation (placed call)
	ClassReply               // RPC completion reply back to the requester
	ClassShared              // atomic shared-variable operation + reply
	NumClasses               // count sentinel, not a class
)

var classNames = [NumClasses]string{
	"get", "put", "blkget", "blkput", "alloc", "rpc", "reply", "shared",
}

func (c Class) String() string {
	if c >= 0 && c < NumClasses {
		return classNames[c]
	}
	return "?"
}

// UnitKind identifies which serial resource a Span occupied.
type UnitKind int

// Span units.
const (
	UnitEU  UnitKind = iota // execution unit: a fiber ran
	UnitSU                  // synchronization unit: a message was serviced
	UnitNet                 // a point-to-point link carried a message
)

// Msg is one split-phase message's lifecycle: issued by the EU at Issue,
// completed (slot filled / write acknowledged / fiber placed) at Done.
type Msg struct {
	ID    int64 // 1-based; 0 means "no message" at instrumentation points
	Class Class
	Site  string // SIMPLE site key of the issuing instruction ("" unknown)
	Src   int    // issuing node
	Dst   int    // serviced node
	Fiber int64  // issuing fiber id
	Words int    // payload words in the request direction
	Issue int64  // ns, simulated issue time
	Done  int64  // ns, simulated completion time; -1 while in flight
}

// Latency is the issue-to-completion time, or -1 for an in-flight message.
func (m *Msg) Latency() int64 {
	if m.Done < 0 {
		return -1
	}
	return m.Done - m.Issue
}

// Span is a busy interval of a serial resource.
type Span struct {
	Unit  UnitKind
	Node  int    // owning node (for UnitNet: the sending node)
	Dst   int    // UnitNet: receiving node; otherwise unused
	Name  string // EU: fiber's entry function; SU: service kind; Net: class
	MsgID int64  // message this span served (0: none, e.g. an EU run)
	Fiber int64  // UnitEU: the fiber that ran; otherwise unused
	Enq   int64  // UnitSU: when the task was enqueued (Start-Enq = queue wait)
	Start int64  // ns
	End   int64  // ns
	// Queue is the number of SU tasks already enqueued (including the one
	// being serviced) when this task arrived at the SU; 0 for non-SU spans.
	Queue int
	// Words is the payload size for UnitNet spans.
	Words int
}

// Recorder accumulates one run's events. The simulator is single-threaded
// and records from its event loop only, but a Recorder is safe for
// concurrent observation: a small internal mutex lets readers (Summarize,
// WriteChrome, Msgs, …) run while a simulation is recording — this is how
// the debug HTTP server serves a live trace summary mid-run. A nil
// *Recorder is a valid, disabled sink: every method is nil-safe.
type Recorder struct {
	mu     sync.Mutex
	nodes  int
	msgs   []Msg
	spans  []Span
	faults []FaultEvent
	// suPend tracks, per node, the completion times of SU tasks scheduled
	// but not yet finished. The SU is serial and FIFO, so the slice is
	// monotone and can be drained from the front (O(1) amortized).
	suPend map[int][]int64
	// horizon is the latest event time seen (the summary's denominator).
	horizon int64
}

// NewRecorder returns an empty recorder for a machine of the given size.
func NewRecorder(nodes int) *Recorder {
	return &Recorder{nodes: nodes, suPend: make(map[int][]int64)}
}

// Reset clears all recorded events, keeping the node count.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = r.msgs[:0]
	r.spans = r.spans[:0]
	r.faults = r.faults[:0]
	r.suPend = make(map[int][]int64)
	r.horizon = 0
}

// SetNodes records the machine size (called by the simulator at attach).
func (r *Recorder) SetNodes(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.nodes {
		r.nodes = n
	}
}

// Nodes returns the machine size the recording was made on.
func (r *Recorder) Nodes() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes
}

// Msgs returns a copy of the recorded messages (issue order).
func (r *Recorder) Msgs() []Msg {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Msg(nil), r.msgs...)
}

// Spans returns a copy of the recorded busy intervals (recording order).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

func (r *Recorder) bump(t int64) {
	if t > r.horizon {
		r.horizon = t
	}
}

// MsgIssue opens a message lifecycle and returns its id (0 when disabled).
func (r *Recorder) MsgIssue(c Class, site string, src, dst int, fiber int64, words int, t int64) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bump(t)
	r.msgs = append(r.msgs, Msg{
		ID: int64(len(r.msgs) + 1), Class: c, Site: site,
		Src: src, Dst: dst, Fiber: fiber, Words: words, Issue: t, Done: -1,
	})
	return int64(len(r.msgs))
}

// MsgDone closes a message lifecycle. A zero id is ignored, so callers can
// thread the id through unconditionally.
func (r *Recorder) MsgDone(id, t int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id <= 0 || id > int64(len(r.msgs)) {
		return
	}
	r.bump(t)
	r.msgs[id-1].Done = t
}

// EUSpan records a fiber occupying a node's EU for [start, end).
func (r *Recorder) EUSpan(node int, fiber int64, name string, start, end int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bump(end)
	r.spans = append(r.spans, Span{
		Unit: UnitEU, Node: node, Name: name, Fiber: fiber, Start: start, End: end,
	})
}

// SUSpan records the node's SU servicing one task: enqueued at enq, busy
// [start, end). The queue depth at enqueue time is derived from the FIFO
// completion times of still-pending tasks.
func (r *Recorder) SUSpan(node int, name string, msgID int64, enq, start, end int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bump(end)
	pend := r.suPend[node]
	for len(pend) > 0 && pend[0] <= enq {
		pend = pend[1:]
	}
	pend = append(pend, end)
	r.suPend[node] = pend
	r.spans = append(r.spans, Span{
		Unit: UnitSU, Node: node, Name: name, MsgID: msgID,
		Enq: enq, Start: start, End: end, Queue: len(pend),
	})
}

// NetSpan records the src→dst link carrying a message for [start, end).
func (r *Recorder) NetSpan(src, dst int, name string, msgID int64, words int, start, end int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bump(end)
	r.spans = append(r.spans, Span{
		Unit: UnitNet, Node: src, Dst: dst, Name: name, MsgID: msgID,
		Words: words, Start: start, End: end,
	})
}

// MsgCount returns the number of messages recorded so far (0 for nil).
func (r *Recorder) MsgCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

// Absorb appends every event of part into r: messages are renumbered to
// follow r's existing ids, and every message reference carried by a span or
// fault event is rewritten through mapRef (which must map part-relative
// references onto the renumbered id space; 0 stays "no message"). The
// sharded simulator uses this to fold per-shard recorders into the user's
// recorder in shard order — each shard's internal order is preserved, so the
// merged recording is deterministic for a deterministic run.
func (r *Recorder) Absorb(part *Recorder, mapRef func(int64) int64) {
	if r == nil || part == nil {
		return
	}
	part.mu.Lock()
	defer part.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	base := int64(len(r.msgs))
	for _, mg := range part.msgs {
		mg.ID += base
		r.msgs = append(r.msgs, mg)
	}
	for _, sp := range part.spans {
		sp.MsgID = mapRef(sp.MsgID)
		r.spans = append(r.spans, sp)
	}
	for _, fe := range part.faults {
		fe.MsgID = mapRef(fe.MsgID)
		r.faults = append(r.faults, fe)
	}
	if part.horizon > r.horizon {
		r.horizon = part.horizon
	}
}

// Horizon returns the latest event timestamp recorded (ns).
func (r *Recorder) Horizon() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.horizon
}

// Enabled reports whether events are being collected (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }
