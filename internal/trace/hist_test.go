package trace

import "testing"

// Edge cases for the pow2 histogram: empty, single-bucket, quantile
// extremes, and saturation behavior the metrics exposition relies on.

func TestHistEmpty(t *testing.T) {
	var h Hist
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean = %d, want 0", got)
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.N != 0 || h.Sum != 0 || h.Min != 0 || h.Max != 0 {
		t.Errorf("empty hist not zero-valued: %+v", h)
	}
}

func TestHistSingleSample(t *testing.T) {
	var h Hist
	h.Add(5) // bucket 2: [4, 8)
	if h.N != 1 || h.Sum != 5 || h.Min != 5 || h.Max != 5 {
		t.Fatalf("after one Add(5): %+v", h)
	}
	if got := h.Mean(); got != 5 {
		t.Errorf("Mean = %d, want 5", got)
	}
	// Every quantile of a single-bucket hist is that bucket's upper edge.
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %d, want 7 (upper edge of [4,8))", q, got)
		}
	}
}

func TestHistSingleBucketManySamples(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Add(1000) // bucket 9: [512, 1024)
	}
	if got := h.Quantile(0); got != 1023 {
		t.Errorf("Quantile(0) = %d, want 1023", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Errorf("Quantile(1) = %d, want 1023", got)
	}
	if got := h.Mean(); got != 1000 {
		t.Errorf("Mean = %d, want 1000", got)
	}
}

func TestHistQuantileExtremes(t *testing.T) {
	var h Hist
	h.Add(1)    // bucket 0
	h.Add(100)  // bucket 6: [64, 128)
	h.Add(5000) // bucket 12: [4096, 8192)
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %d, want 1 (upper edge of bucket 0)", got)
	}
	if got := h.Quantile(1); got != 8191 {
		t.Errorf("Quantile(1) = %d, want 8191 (upper edge of the top bucket)", got)
	}
	if got := h.Quantile(0.5); got != 127 {
		t.Errorf("Quantile(0.5) = %d, want 127", got)
	}
}

func TestHistZeroAndNegative(t *testing.T) {
	var h Hist
	h.Add(-3) // ignored
	if h.N != 0 {
		t.Fatalf("negative sample was recorded: %+v", h)
	}
	h.Add(0) // bucket 0 also holds 0
	if h.Buckets[0] != 1 || h.N != 1 || h.Min != 0 || h.Max != 0 {
		t.Errorf("after Add(0): %+v", h)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("Quantile(0.5) = %d, want 1 (upper edge of bucket 0)", got)
	}
}

func TestHistSaturatesTopBucket(t *testing.T) {
	var h Hist
	huge := int64(1) << 62 // Len64 would index past the last bucket
	h.Add(huge)
	if h.Buckets[len(h.Buckets)-1] != 1 {
		t.Fatalf("huge sample not clamped into the top bucket: %+v", h.Buckets)
	}
	if h.Max != huge {
		t.Errorf("Max = %d, want %d", h.Max, huge)
	}
}
