package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export. The format is the JSON object form of the
// Trace Event Format: {"traceEvents": [...], "displayTimeUnit": "ns"},
// loadable in chrome://tracing and Perfetto. Each simulated node becomes a
// process (pid = node id) with three threads: EU (tid 0), SU (tid 1) and
// NET out (tid 2). Busy intervals are complete events ("ph":"X"); message
// lifecycles are async begin/end pairs ("ph":"b"/"e") on the issuing node,
// carrying class, site, payload words and destination as args.
//
// Timestamps: the trace_event "ts"/"dur" fields are microseconds; simulated
// nanoseconds are emitted as fixed-point micros with three decimals, so the
// export is byte-deterministic for a deterministic simulation.

// Thread ids within a node's process.
const (
	chromeTidEU  = 0
	chromeTidSU  = 1
	chromeTidNet = 2
	chromeTidMsg = 3
)

// WriteChrome writes the recording as Chrome trace_event JSON. The recorder
// is locked for the duration, so a live simulation pauses recording while
// the export runs — callers serving a run in flight should write into a
// buffer, not a slow socket.
func (r *Recorder) WriteChrome(w io.Writer) error {
	if r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	if r != nil {
		for node := 0; node < r.nodes; node++ {
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":"node %d"}}`, node, node))
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"EU"}}`, node, chromeTidEU))
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"SU"}}`, node, chromeTidSU))
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"NET out"}}`, node, chromeTidNet))
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"messages"}}`, node, chromeTidMsg))
		}
		for i := range r.spans {
			s := &r.spans[i]
			switch s.Unit {
			case UnitEU:
				emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"cat":"eu","ts":%s,"dur":%s,"args":{"fiber":%d}}`,
					s.Node, chromeTidEU, jstr(s.Name), micros(s.Start), micros(s.End-s.Start), s.Fiber))
			case UnitSU:
				emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"cat":"su","ts":%s,"dur":%s,"args":{"msg":%d,"queue":%d}}`,
					s.Node, chromeTidSU, jstr(s.Name), micros(s.Start), micros(s.End-s.Start), s.MsgID, s.Queue))
			case UnitNet:
				emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"cat":"net","ts":%s,"dur":%s,"args":{"msg":%d,"dst":%d,"words":%d}}`,
					s.Node, chromeTidNet, jstr(s.Name), micros(s.Start), micros(s.End-s.Start), s.MsgID, s.Dst, s.Words))
			}
		}
		for i := range r.faults {
			fe := &r.faults[i]
			emit(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"name":%s,"cat":"fault","ts":%s,"s":"t","args":{"msg":%d,"class":%s,"attempt":%d}}`,
				fe.Node, chromeTidSU, jstr(fe.Kind.String()), micros(fe.Time),
				fe.MsgID, jstr(fe.Class.String()), fe.Attempt))
		}
		for i := range r.msgs {
			m := &r.msgs[i]
			end := m.Done
			if end < 0 {
				// In-flight at simulation end (e.g. a final ack still on the
				// wire when main completed): close at the horizon so the
				// event nests correctly.
				end = r.horizon
			}
			emit(fmt.Sprintf(`{"ph":"b","pid":%d,"tid":%d,"cat":"msg","id":%d,"name":%s,"ts":%s,"args":{"site":%s,"src":%d,"dst":%d,"words":%d,"fiber":%d,"complete":%t}}`,
				m.Src, chromeTidMsg, m.ID, jstr(m.Class.String()), micros(m.Issue),
				jstr(m.Site), m.Src, m.Dst, m.Words, m.Fiber, m.Done >= 0))
			emit(fmt.Sprintf(`{"ph":"e","pid":%d,"tid":%d,"cat":"msg","id":%d,"name":%s,"ts":%s}`,
				m.Src, chromeTidMsg, m.ID, jstr(m.Class.String()), micros(end)))
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// micros renders simulated ns as fixed-point microseconds ("12.345").
func micros(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// jstr JSON-escapes a string.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(b)
}
