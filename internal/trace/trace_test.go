package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilRecorderIsSafe: a nil *Recorder is the disabled sink; every method
// must be callable and inert.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if id := r.MsgIssue(ClassGet, "f:S1", 0, 1, 7, 2, 100); id != 0 {
		t.Errorf("nil MsgIssue returned id %d, want 0", id)
	}
	r.MsgDone(1, 200)
	r.EUSpan(0, 1, "main", 0, 10)
	r.SUSpan(0, "get", 1, 0, 5, 10)
	r.NetSpan(0, 1, "get", 1, 2, 5, 15)
	r.Reset()
	r.SetNodes(4)
	if r.Nodes() != 0 || r.Horizon() != 0 {
		t.Error("nil recorder reports non-zero state")
	}
	if r.Msgs() != nil || r.Spans() != nil {
		t.Error("nil recorder returned events")
	}
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil WriteChrome emitted invalid JSON: %v", err)
	}
	if s := r.Summarize(); s == nil {
		t.Error("nil Summarize returned nil")
	}
}

func TestMsgLifecycle(t *testing.T) {
	r := NewRecorder(2)
	id := r.MsgIssue(ClassBlkGet, "walk:S3", 0, 1, 9, 16, 1000)
	if id != 1 {
		t.Fatalf("first message id = %d, want 1", id)
	}
	msgs := r.Msgs()
	if len(msgs) != 1 {
		t.Fatalf("got %d messages, want 1", len(msgs))
	}
	m := msgs[0]
	if m.Class != ClassBlkGet || m.Site != "walk:S3" || m.Src != 0 || m.Dst != 1 ||
		m.Fiber != 9 || m.Words != 16 || m.Issue != 1000 {
		t.Errorf("message fields wrong: %+v", m)
	}
	if m.Done != -1 || m.Latency() != -1 {
		t.Errorf("in-flight message should have Done=-1, Latency=-1; got %d/%d",
			m.Done, m.Latency())
	}
	r.MsgDone(id, 4500)
	if got := r.Msgs()[0].Latency(); got != 3500 {
		t.Errorf("latency = %d, want 3500", got)
	}
	// Out-of-range and zero ids are ignored, not panics.
	r.MsgDone(0, 5000)
	r.MsgDone(99, 5000)
	if r.Horizon() != 4500 {
		t.Errorf("horizon = %d, want 4500", r.Horizon())
	}
}

// TestSUQueueDepth: the FIFO pending-set logic must report the number of
// tasks in the SU queue (including the arriving one) at enqueue time.
func TestSUQueueDepth(t *testing.T) {
	r := NewRecorder(1)
	// Three tasks arrive at t=0,1,2; the serial SU finishes them at 10,20,30.
	r.SUSpan(0, "a", 0, 0, 0, 10)
	r.SUSpan(0, "b", 0, 1, 10, 20)
	r.SUSpan(0, "c", 0, 2, 20, 30)
	// A fourth arrives after the first two completed.
	r.SUSpan(0, "d", 0, 25, 30, 40)
	want := []int{1, 2, 3, 2} // d sees only c (pending) plus itself
	for i, sp := range r.Spans() {
		if sp.Queue != want[i] {
			t.Errorf("span %d (%s): queue depth %d, want %d", i, sp.Name, sp.Queue, want[i])
		}
	}
}

func TestResetAndSetNodes(t *testing.T) {
	r := NewRecorder(2)
	r.MsgIssue(ClassPut, "", 0, 1, 1, 1, 10)
	r.EUSpan(0, 1, "main", 0, 5)
	r.Reset()
	if len(r.Msgs()) != 0 || len(r.Spans()) != 0 || r.Horizon() != 0 {
		t.Error("Reset left events behind")
	}
	if r.Nodes() != 2 {
		t.Errorf("Reset changed node count: %d", r.Nodes())
	}
	r.SetNodes(8)
	if r.Nodes() != 8 {
		t.Errorf("SetNodes(8) → %d", r.Nodes())
	}
	r.SetNodes(4) // never shrinks
	if r.Nodes() != 8 {
		t.Errorf("SetNodes must not shrink: %d", r.Nodes())
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassGet: "get", ClassPut: "put", ClassBlkGet: "blkget",
		ClassBlkPut: "blkput", ClassAlloc: "alloc", ClassRPC: "rpc",
		ClassReply: "reply", ClassShared: "shared",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
	if Class(99).String() != "?" {
		t.Errorf("out-of-range class: %q", Class(99).String())
	}
}

func TestHist(t *testing.T) {
	var h Hist
	h.Add(-5) // ignored
	for _, v := range []int64{0, 1, 2, 3, 7, 8, 1000} {
		h.Add(v)
	}
	if h.N != 7 {
		t.Fatalf("N = %d, want 7", h.N)
	}
	if h.Min != 0 || h.Max != 1000 {
		t.Errorf("min/max = %d/%d, want 0/1000", h.Min, h.Max)
	}
	if h.Sum != 1021 {
		t.Errorf("sum = %d, want 1021", h.Sum)
	}
	if h.Mean() != 1021/7 {
		t.Errorf("mean = %d, want %d", h.Mean(), int64(1021/7))
	}
	// Bucket layout: [2^i, 2^(i+1)); bucket 0 also holds 0.
	// 0,1 → b0; 2,3 → b1; 7 → b2; 8 → b3; 1000 → b9.
	wantBuckets := map[int]int64{0: 2, 1: 2, 2: 1, 3: 1, 9: 1}
	for i, c := range h.Buckets {
		if c != wantBuckets[i] {
			t.Errorf("bucket %d: count %d, want %d", i, c, wantBuckets[i])
		}
	}
	if q := h.Quantile(1.0); q < h.Max {
		t.Errorf("q100 = %d, below max %d", q, h.Max)
	}
	if q := h.Quantile(0.0); q < 1 {
		t.Errorf("q0 = %d, want a bucket upper edge >= 1", q)
	}
	var empty Hist
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty hist should report zeros")
	}
}

// synthRecorder builds a small fixed recording by hand: two nodes, one get
// and one in-flight put.
func synthRecorder() *Recorder {
	r := NewRecorder(2)
	id := r.MsgIssue(ClassGet, "walk:S3", 0, 1, 5, 1, 100)
	r.EUSpan(0, 5, "walk", 0, 100)
	r.NetSpan(0, 1, "get", id, 1, 100, 200)
	r.SUSpan(1, "get", id, 200, 200, 250)
	r.NetSpan(1, 0, "reply", id, 1, 250, 350)
	r.SUSpan(0, "reply", id, 350, 350, 380)
	r.MsgDone(id, 380)
	r.MsgIssue(ClassPut, "", 0, 1, 5, 1, 400) // never completed
	return r
}

func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := synthRecorder().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 nodes x 5 metadata + 5 spans + 2 msgs x (b+e) = 19 events.
	if len(doc.TraceEvents) != 19 {
		t.Errorf("got %d events, want 19", len(doc.TraceEvents))
	}
	var phases = map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 10 || phases["X"] != 5 || phases["b"] != 2 || phases["e"] != 2 {
		t.Errorf("phase counts %v, want M:10 X:5 b:2 e:2", phases)
	}
}

func TestMicrosFixedPoint(t *testing.T) {
	cases := map[int64]string{
		0:     "0.000",
		1:     "0.001",
		999:   "0.999",
		1000:  "1.000",
		12345: "12.345",
		-1500: "-1.500",
	}
	for ns, want := range cases {
		if got := micros(ns); got != want {
			t.Errorf("micros(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := synthRecorder().Summarize()
	if s.Nodes != 2 {
		t.Errorf("summary nodes = %d", s.Nodes)
	}
	if len(s.Classes) != 2 {
		t.Fatalf("got %d classes, want 2 (get, put): %+v", len(s.Classes), s.Classes)
	}
	get, put := s.Classes[0], s.Classes[1]
	if get.Class != ClassGet || get.Count != 1 || get.Incomplete != 0 {
		t.Errorf("get class: %+v", get)
	}
	if put.Class != ClassPut || put.Count != 1 || put.Incomplete != 1 {
		t.Errorf("put class: %+v", put)
	}
	if get.Latency.N != 1 || get.Latency.Min != 280 {
		t.Errorf("get latency hist: %+v", get.Latency)
	}
	if len(s.PerNode) != 2 {
		t.Fatalf("got %d node rows, want 2", len(s.PerNode))
	}
	if s.PerNode[0].EUBusy != 100 || s.PerNode[0].EURuns != 1 {
		t.Errorf("node 0 EU stats: %+v", s.PerNode[0])
	}
	if s.PerNode[1].SUBusy != 50 || s.PerNode[1].SUTasks != 1 {
		t.Errorf("node 1 SU stats: %+v", s.PerNode[1])
	}
	if len(s.Links) != 2 || s.Links[0].Src != 0 || s.Links[0].Dst != 1 || s.Links[0].Words != 1 {
		t.Errorf("links: %+v", s.Links)
	}
	txt := s.String()
	for _, want := range []string{"walk:S3", "get", "(unattributed)"} {
		if !strings.Contains(txt, want) {
			t.Errorf("summary text missing %q:\n%s", want, txt)
		}
	}
	// Determinism of the text report.
	if txt != synthRecorder().Summarize().String() {
		t.Error("summary text is not deterministic")
	}
}

func TestCompileStats(t *testing.T) {
	var nilStats *CompileStats
	nilStats.AddPhase("parse", 5) // must not panic
	if nilStats.TotalNs() != 0 {
		t.Error("nil CompileStats TotalNs != 0")
	}
	st := &CompileStats{}
	st.AddPhase("parse", 1000)
	st.AddPhase("sema", 2500)
	if st.TotalNs() != 3500 {
		t.Errorf("TotalNs = %d, want 3500", st.TotalNs())
	}
	if len(st.Phases) != 2 || st.Phases[0].Name != "parse" || st.Phases[1].Ns != 2500 {
		t.Errorf("phases: %+v", st.Phases)
	}
	out := st.String()
	if !strings.Contains(out, "parse") || !strings.Contains(out, "sema") {
		t.Errorf("String() missing phases:\n%s", out)
	}
}
