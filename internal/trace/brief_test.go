package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for _, v := range []int64{3, 100, 4096} {
		a.Add(v)
	}
	for _, v := range []int64{1, 1 << 30} {
		b.Add(v)
	}
	a.Merge(&b)
	if a.N != 5 || a.Sum != 3+100+4096+1+(1<<30) {
		t.Errorf("merged N=%d Sum=%d", a.N, a.Sum)
	}
	if a.Min != 1 || a.Max != 1<<30 {
		t.Errorf("merged Min=%d Max=%d", a.Min, a.Max)
	}
	var total int64
	for _, c := range a.Buckets {
		total += c
	}
	if total != 5 {
		t.Errorf("bucket counts sum to %d, want 5", total)
	}
	if q := a.Quantile(1.0); q < a.Max {
		t.Errorf("q100 %d < max %d after merge", q, a.Max)
	}
}

func TestHistMergeEdgeCases(t *testing.T) {
	var a Hist
	a.Add(7)
	before := a
	a.Merge(nil)
	a.Merge(&Hist{})
	if a != before {
		t.Error("merging nil/empty changed the histogram")
	}

	// Merging into an empty histogram copies the source exactly.
	var empty Hist
	empty.Merge(&before)
	if empty != before {
		t.Errorf("empty.Merge(x) = %+v, want %+v", empty, before)
	}
}

func TestSummaryBrief(t *testing.T) {
	rec := NewRecorder(2)
	// Two completed messages and one still in flight at the horizon.
	id1 := rec.MsgIssue(ClassGet, "a.ec:1", 0, 1, 1, 2, 100)
	rec.MsgDone(id1, 900)
	id2 := rec.MsgIssue(ClassPut, "a.ec:2", 1, 0, 1, 4, 200)
	rec.MsgDone(id2, 5000)
	rec.MsgIssue(ClassGet, "a.ec:3", 0, 1, 1, 2, 300)
	sum := rec.Summarize()
	b := sum.Brief()

	if b.Nodes != 2 || b.Msgs != 3 || b.Words != 8 || b.Incomplete != 1 {
		t.Errorf("brief = %+v", b)
	}
	// Completed latencies are 800 and 4800 ns; the pooled quantiles must
	// bracket them (bucket upper edges).
	if b.LatencyMaxNs != 4800 {
		t.Errorf("LatencyMaxNs = %d, want 4800", b.LatencyMaxNs)
	}
	if b.LatencyP50Ns < 800 || b.LatencyP50Ns > b.LatencyP95Ns {
		t.Errorf("quantiles out of order: p50=%d p95=%d", b.LatencyP50Ns, b.LatencyP95Ns)
	}
	if b.Faults != 0 || b.Retries != 0 || b.Drops != 0 {
		t.Errorf("fault fields should be zero: %+v", b)
	}

	// The digest is part of the earthd wire format: stable JSON keys.
	j, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"nodes"`, `"msgs"`, `"latency_p50_ns"`, `"latency_p95_ns"`} {
		if !strings.Contains(string(j), key) {
			t.Errorf("digest JSON missing %s: %s", key, j)
		}
	}
	// Zero-valued fault fields are omitted from the wire format.
	if strings.Contains(string(j), `"retries"`) {
		t.Errorf("zero retries should be omitted: %s", j)
	}

	// Brief is deterministic for equal summaries.
	if b2 := rec.Summarize().Brief(); b != b2 {
		t.Errorf("Brief not deterministic: %+v vs %+v", b, b2)
	}
}
