package trace

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Hist is a power-of-two latency histogram (bucket i holds samples in
// [2^i, 2^(i+1)) ns; bucket 0 also holds 0).
type Hist struct {
	Buckets [48]int64
	N       int64
	Sum     int64
	Min     int64
	Max     int64
}

// Add records one sample.
func (h *Hist) Add(v int64) {
	if v < 0 {
		return
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v)) - 1
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// Merge pools o's samples into h (bucket-wise; Min/Max/Sum/N combine).
// Aggregators use this to fold per-class or per-shard histograms into one:
// Summary.Brief folds class latencies, and the metrics registry merge in
// internal/metrics folds per-shard pipeline histograms for the earthd
// scrape endpoint.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.N == 0 {
		return
	}
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
	if h.N == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.N += o.N
	h.Sum += o.Sum
}

// Mean is the average sample (0 when empty).
func (h *Hist) Mean() int64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / h.N
}

// Quantile returns an upper bound on the q-quantile sample (bucket upper
// edge), q in [0,1].
func (h *Hist) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	target := int64(q * float64(h.N))
	if target >= h.N {
		target = h.N - 1
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > target {
			return (int64(1) << uint(i+1)) - 1
		}
	}
	return h.Max
}

// bar renders a proportional ASCII bar.
func bar(v, max int64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(float64(v) / float64(max) * float64(width))
	if v > 0 && n == 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// ClassStats aggregates one message class.
type ClassStats struct {
	Class      Class
	Count      int64
	Incomplete int64 // still in flight at simulation end
	Words      int64
	Latency    Hist
}

// SiteStats aggregates one site's message traffic.
type SiteStats struct {
	Site     string
	ByClass  [NumClasses]int64
	Total    int64
	Words    int64
	LatSum   int64
	LatCount int64
}

// MeanLatency is the site's average message latency in ns.
func (s *SiteStats) MeanLatency() int64 {
	if s.LatCount == 0 {
		return 0
	}
	return s.LatSum / s.LatCount
}

// NodeStats aggregates one node's resource usage.
type NodeStats struct {
	Node     int
	EUBusy   int64 // ns the EU spent running fibers
	EURuns   int64
	SUBusy   int64 // ns the SU spent servicing messages
	SUTasks  int64
	SUDelay  Hist // enqueue-to-service-start wait
	SUQueue  Hist // queue depth observed at each enqueue
	MaxQueue int
}

// LinkStats aggregates one directed link.
type LinkStats struct {
	Src, Dst int
	Msgs     int64
	Words    int64
	Busy     int64 // ns the link was occupied
}

// FaultSummary aggregates the recording's fault-injection and
// reliable-messaging events (all zero for a fault-free run).
type FaultSummary struct {
	Kinds   [NumFaultKinds]int64 // event counts by FaultKind
	Retries [NumClasses]int64    // retransmissions by message class
	Drops   [NumClasses]int64    // wire drops by message class
}

// Total is the number of fault events of any kind.
func (f *FaultSummary) Total() int64 {
	var n int64
	for _, c := range f.Kinds {
		n += c
	}
	return n
}

// Summary is the reduced view of a recording.
type Summary struct {
	Nodes   int
	Horizon int64 // ns, end of recorded activity
	Classes []ClassStats
	Sites   []SiteStats // sorted by total ops, descending
	PerNode []NodeStats
	Links   []LinkStats // sorted (src, dst)
	Faults  FaultSummary
}

// Summarize reduces the recording. Deterministic: equal recordings produce
// equal summaries (ties in the site table break on the site key).
func (r *Recorder) Summarize() *Summary {
	s := &Summary{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Nodes = r.nodes
	s.Horizon = r.horizon

	byClass := make([]ClassStats, NumClasses)
	for c := Class(0); c < NumClasses; c++ {
		byClass[c].Class = c
	}
	siteIx := make(map[string]int)
	for i := range r.msgs {
		m := &r.msgs[i]
		cs := &byClass[m.Class]
		cs.Count++
		cs.Words += int64(m.Words)
		if lat := m.Latency(); lat >= 0 {
			cs.Latency.Add(lat)
		} else {
			cs.Incomplete++
		}
		site := m.Site
		if site == "" {
			site = "(unattributed)"
		}
		ix, ok := siteIx[site]
		if !ok {
			ix = len(s.Sites)
			siteIx[site] = ix
			s.Sites = append(s.Sites, SiteStats{Site: site})
		}
		st := &s.Sites[ix]
		st.ByClass[m.Class]++
		st.Total++
		st.Words += int64(m.Words)
		if lat := m.Latency(); lat >= 0 {
			st.LatSum += lat
			st.LatCount++
		}
	}
	for _, cs := range byClass {
		if cs.Count > 0 {
			s.Classes = append(s.Classes, cs)
		}
	}
	sort.Slice(s.Sites, func(i, j int) bool {
		if s.Sites[i].Total != s.Sites[j].Total {
			return s.Sites[i].Total > s.Sites[j].Total
		}
		return s.Sites[i].Site < s.Sites[j].Site
	})

	nodes := make([]NodeStats, s.Nodes)
	for i := range nodes {
		nodes[i].Node = i
	}
	links := make(map[[2]int]*LinkStats)
	grow := func(n int) {
		for len(nodes) <= n {
			nodes = append(nodes, NodeStats{Node: len(nodes)})
		}
	}
	for i := range r.spans {
		sp := &r.spans[i]
		switch sp.Unit {
		case UnitEU:
			grow(sp.Node)
			nodes[sp.Node].EUBusy += sp.End - sp.Start
			nodes[sp.Node].EURuns++
		case UnitSU:
			grow(sp.Node)
			ns := &nodes[sp.Node]
			ns.SUBusy += sp.End - sp.Start
			ns.SUTasks++
			ns.SUQueue.Add(int64(sp.Queue))
			if sp.Queue > ns.MaxQueue {
				ns.MaxQueue = sp.Queue
			}
			ns.SUDelay.Add(sp.Start - sp.Enq)
		case UnitNet:
			key := [2]int{sp.Node, sp.Dst}
			ls := links[key]
			if ls == nil {
				ls = &LinkStats{Src: sp.Node, Dst: sp.Dst}
				links[key] = ls
			}
			ls.Msgs++
			ls.Words += int64(sp.Words)
			ls.Busy += sp.End - sp.Start
		}
	}
	for i := range r.faults {
		fe := &r.faults[i]
		if fe.Kind < 0 || fe.Kind >= NumFaultKinds {
			continue
		}
		s.Faults.Kinds[fe.Kind]++
		if fe.Class >= 0 && fe.Class < NumClasses {
			switch fe.Kind {
			case FaultRetry:
				s.Faults.Retries[fe.Class]++
			case FaultDrop:
				s.Faults.Drops[fe.Class]++
			}
		}
	}

	s.PerNode = nodes
	for _, ls := range links {
		s.Links = append(s.Links, *ls)
	}
	sort.Slice(s.Links, func(i, j int) bool {
		if s.Links[i].Src != s.Links[j].Src {
			return s.Links[i].Src < s.Links[j].Src
		}
		return s.Links[i].Dst < s.Links[j].Dst
	})
	return s
}

// Brief is a compact, JSON-friendly digest of a Summary: total message
// traffic and end-to-end latency quantiles pooled across classes, without
// the per-site/per-node tables. The compile-and-simulate service (earthd)
// attaches one to each traced job's result so clients get machine-readable
// per-job communication telemetry without parsing the text report.
type Brief struct {
	Nodes        int   `json:"nodes"`
	HorizonNs    int64 `json:"horizon_ns"`
	Msgs         int64 `json:"msgs"`
	Words        int64 `json:"words"`
	Incomplete   int64 `json:"incomplete"`
	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP95Ns int64 `json:"latency_p95_ns"`
	LatencyMaxNs int64 `json:"latency_max_ns"`
	Faults       int64 `json:"faults,omitempty"`
	Retries      int64 `json:"retries,omitempty"`
	Drops        int64 `json:"drops,omitempty"`
}

// Brief reduces the summary to its digest. Deterministic for equal
// summaries.
func (s *Summary) Brief() Brief {
	b := Brief{Nodes: s.Nodes, HorizonNs: s.Horizon, Faults: s.Faults.Total()}
	var all Hist
	for i := range s.Classes {
		cs := &s.Classes[i]
		b.Msgs += cs.Count
		b.Words += cs.Words
		b.Incomplete += cs.Incomplete
		all.Merge(&cs.Latency)
	}
	b.LatencyP50Ns = all.Quantile(0.50)
	b.LatencyP95Ns = all.Quantile(0.95)
	b.LatencyMaxNs = all.Max
	for _, n := range s.Faults.Retries {
		b.Retries += n
	}
	for _, n := range s.Faults.Drops {
		b.Drops += n
	}
	return b
}

// pct renders busy/total as a percentage.
func pct(busy, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(busy) / float64(total)
}

// String renders the summary as a text report.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d node(s), horizon %d ns (%.3f ms)\n",
		s.Nodes, s.Horizon, float64(s.Horizon)/1e6)

	if len(s.Classes) > 0 {
		fmt.Fprintf(&b, "\nper-message-class latency (ns):\n")
		fmt.Fprintf(&b, "  %-8s %10s %10s %10s %10s %10s %10s %8s\n",
			"class", "count", "words", "min", "mean", "p95", "max", "inflight")
		for _, cs := range s.Classes {
			fmt.Fprintf(&b, "  %-8s %10d %10d %10d %10d %10d %10d %8d\n",
				cs.Class, cs.Count, cs.Words,
				cs.Latency.Min, cs.Latency.Mean(), cs.Latency.Quantile(0.95),
				cs.Latency.Max, cs.Incomplete)
		}
		// Latency histograms, one bar chart per class.
		for _, cs := range s.Classes {
			if cs.Latency.N == 0 {
				continue
			}
			var peak int64
			lo, hi := -1, -1
			for i, c := range cs.Latency.Buckets {
				if c > 0 {
					if lo < 0 {
						lo = i
					}
					hi = i
					if c > peak {
						peak = c
					}
				}
			}
			fmt.Fprintf(&b, "\n  %s latency histogram:\n", cs.Class)
			for i := lo; i <= hi; i++ {
				c := cs.Latency.Buckets[i]
				fmt.Fprintf(&b, "    <%8dns %8d %s\n", int64(1)<<uint(i+1), c, bar(c, peak, 40))
			}
		}
	}

	if len(s.Sites) > 0 {
		fmt.Fprintf(&b, "\nper-site message counts (top %d of %d):\n", minInt(20, len(s.Sites)), len(s.Sites))
		fmt.Fprintf(&b, "  %-24s %8s", "site", "total")
		for c := Class(0); c < NumClasses; c++ {
			fmt.Fprintf(&b, " %7s", c)
		}
		fmt.Fprintf(&b, " %10s %10s\n", "words", "mean ns")
		for i, st := range s.Sites {
			if i >= 20 {
				break
			}
			fmt.Fprintf(&b, "  %-24s %8d", st.Site, st.Total)
			for c := Class(0); c < NumClasses; c++ {
				fmt.Fprintf(&b, " %7d", st.ByClass[c])
			}
			fmt.Fprintf(&b, " %10d %10d\n", st.Words, st.MeanLatency())
		}
	}

	if len(s.PerNode) > 0 {
		fmt.Fprintf(&b, "\nper-node utilization:\n")
		fmt.Fprintf(&b, "  %-6s %12s %7s %8s %12s %7s %8s %9s %8s %10s\n",
			"node", "EU busy ns", "EU%", "runs", "SU busy ns", "SU%", "tasks", "q.mean", "q.max", "wait ns")
		for _, ns := range s.PerNode {
			fmt.Fprintf(&b, "  %-6d %12d %6.1f%% %8d %12d %6.1f%% %8d %9d %8d %10d\n",
				ns.Node, ns.EUBusy, pct(ns.EUBusy, s.Horizon), ns.EURuns,
				ns.SUBusy, pct(ns.SUBusy, s.Horizon), ns.SUTasks,
				ns.SUQueue.Mean(), ns.MaxQueue, ns.SUDelay.Mean())
		}
	}

	if s.Faults.Total() > 0 {
		fmt.Fprintf(&b, "\nfault injection:\n")
		fmt.Fprintf(&b, "  %-14s", "kind")
		for k := FaultKind(0); k < NumFaultKinds; k++ {
			fmt.Fprintf(&b, " %12s", k)
		}
		fmt.Fprintf(&b, "\n  %-14s", "events")
		for k := FaultKind(0); k < NumFaultKinds; k++ {
			fmt.Fprintf(&b, " %12d", s.Faults.Kinds[k])
		}
		fmt.Fprintf(&b, "\n\n  per-class reliable-messaging activity:\n")
		fmt.Fprintf(&b, "    %-8s %10s %10s\n", "class", "retries", "drops")
		for c := Class(0); c < NumClasses; c++ {
			if s.Faults.Retries[c] == 0 && s.Faults.Drops[c] == 0 {
				continue
			}
			fmt.Fprintf(&b, "    %-8s %10d %10d\n", c, s.Faults.Retries[c], s.Faults.Drops[c])
		}
	}

	if len(s.Links) > 0 {
		fmt.Fprintf(&b, "\nnetwork links:\n")
		fmt.Fprintf(&b, "  %-8s %10s %10s %12s %7s\n", "link", "msgs", "words", "busy ns", "util")
		for _, ls := range s.Links {
			fmt.Fprintf(&b, "  %2d->%-4d %10d %10d %12d %6.1f%%\n",
				ls.Src, ls.Dst, ls.Msgs, ls.Words, ls.Busy, pct(ls.Busy, s.Horizon))
		}
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
