package trace

// Fault-injection events. When the simulator runs with a fault model
// (earthsim.Config.Faults), every injected fault and every reliable-
// messaging reaction is recorded as a FaultEvent: the wire dropping or
// duplicating a hop, the SU stalling, the sender retransmitting after a
// timeout, and the receiver suppressing a duplicate. Like all trace events
// these are observational — the fault decisions themselves are driven by
// the simulator's own seeded PRNG, never by the recorder.

// FaultKind enumerates fault-injection and reliable-messaging events.
type FaultKind int

// Fault event kinds.
const (
	FaultDrop        FaultKind = iota // the wire dropped a message hop
	FaultDup                          // the wire delivered a hop twice
	FaultStall                        // an SU stalled before servicing a hop
	FaultRetry                        // sender timeout: the message was retransmitted
	FaultDupSuppress                  // receiver discarded an already-seen copy
	NumFaultKinds                     // count sentinel, not a kind
)

var faultNames = [NumFaultKinds]string{"drop", "dup", "stall", "retry", "dup-suppress"}

func (k FaultKind) String() string {
	if k >= 0 && k < NumFaultKinds {
		return faultNames[k]
	}
	return "?"
}

// FaultEvent is one injected fault or reliable-messaging reaction.
type FaultEvent struct {
	Kind    FaultKind
	Class   Class // message class of the affected transaction
	MsgID   int64 // trace message id of the transaction (0 when unknown)
	Node    int   // node where the event was decided
	Attempt int   // FaultRetry: the new attempt number; otherwise 0
	Time    int64 // ns, simulated
}

// Fault records one fault event (recording order is simulated-time order,
// since the simulator emits them from its event loop).
func (r *Recorder) Fault(k FaultKind, c Class, msgID int64, node, attempt int, t int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bump(t)
	r.faults = append(r.faults, FaultEvent{
		Kind: k, Class: c, MsgID: msgID, Node: node, Attempt: attempt, Time: t,
	})
}

// FaultEvents returns a copy of the recorded fault events (recording order).
func (r *Recorder) FaultEvents() []FaultEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]FaultEvent(nil), r.faults...)
}
