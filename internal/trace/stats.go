package trace

import (
	"fmt"
	"strings"
	"time"
)

// PhaseStat is one compiler phase's wall-clock time. For phases that fan
// work across a worker pool, CumNs additionally records the cumulative
// busy time summed over all workers; CumNs/Ns approximates the phase's
// effective parallelism. Sequential phases report CumNs == Ns.
type PhaseStat struct {
	Name  string `json:"name"`
	Ns    int64  `json:"ns"`
	CumNs int64  `json:"cum_ns"`
}

// CompileStats records per-phase compiler timings and the headline counters
// of the communication optimization, collected by core.Pipeline when its
// Stats option is on. Timings are host wall-clock (not deterministic); the
// counters are properties of the compiled unit and are deterministic.
type CompileStats struct {
	Phases []PhaseStat `json:"phases"`

	// Candidate remote accesses entering placement (SIMPLE loads/stores
	// through possibly-remote pointers).
	CandidateReads  int `json:"candidate_reads"`
	CandidateWrites int `json:"candidate_writes"`
	// Placement tuples surviving to the final RemoteReads/RemoteWrites
	// sets, summed over statements (the paper's §4.1 output).
	PlacedReadTuples  int `json:"placed_read_tuples"`
	PlacedWriteTuples int `json:"placed_write_tuples"`
	// Communication selection results (§4.2).
	PipelinedReads  int `json:"pipelined_reads"`
	BlockedReads    int `json:"blocked_reads"`
	PipelinedWrites int `json:"pipelined_writes"`
	BlockedWrites   int `json:"blocked_writes"`
	ReadsEliminated int `json:"reads_eliminated"` // redundant ops removed by selection
}

// AddPhase appends a timed sequential phase (CumNs == Ns).
func (s *CompileStats) AddPhase(name string, d time.Duration) {
	s.AddPhaseCum(name, d, d)
}

// AddPhaseCum appends a timed phase with separate wall-clock and cumulative
// (summed-over-workers) busy durations.
func (s *CompileStats) AddPhaseCum(name string, wall, cum time.Duration) {
	if s == nil {
		return
	}
	s.Phases = append(s.Phases, PhaseStat{
		Name: name, Ns: wall.Nanoseconds(), CumNs: cum.Nanoseconds()})
}

// TotalNs sums the phase times.
func (s *CompileStats) TotalNs() int64 {
	if s == nil {
		return 0
	}
	var t int64
	for _, p := range s.Phases {
		t += p.Ns
	}
	return t
}

// String renders the stats as a table.
func (s *CompileStats) String() string {
	var b strings.Builder
	total := s.TotalNs()
	fmt.Fprintf(&b, "compile phases (total %.3f ms):\n", float64(total)/1e6)
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "  %-12s %10.3f ms %5.1f%% %s",
			p.Name, float64(p.Ns)/1e6, pct(p.Ns, total), bar(p.Ns, total, 30))
		if p.CumNs > p.Ns && p.Ns > 0 {
			fmt.Fprintf(&b, " (%.3f ms cum, %.1fx)",
				float64(p.CumNs)/1e6, float64(p.CumNs)/float64(p.Ns))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "placement: %d read / %d write candidates -> %d / %d placed tuples\n",
		s.CandidateReads, s.CandidateWrites, s.PlacedReadTuples, s.PlacedWriteTuples)
	fmt.Fprintf(&b, "selection: reads %d pipelined + %d blocked (%d redundant eliminated); writes %d pipelined + %d blocked\n",
		s.PipelinedReads, s.BlockedReads, s.ReadsEliminated,
		s.PipelinedWrites, s.BlockedWrites)
	return b.String()
}
