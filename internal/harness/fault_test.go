package harness

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/earthsim"
	"repro/internal/olden"
	"repro/internal/trace"
)

// quickFaultParams shrinks each benchmark to the smallest size that still
// exercises remote communication, so the fault tests stay fast under -race.
func quickFaultParams(bm *olden.Benchmark) olden.Params {
	p := bm.DefaultParams
	switch bm.Name {
	case "power":
		p.Size, p.Iters = 8, 2
	case "perimeter":
		p.Size = 5
	case "tsp":
		p.Size = 64
	case "health":
		p.Size, p.Iters = 3, 20
	case "voronoi":
		p.Size = 96
	}
	return p
}

const faultTestNodes = 4

func compileOlden(t *testing.T, bm *olden.Benchmark, opt core.Options) (*core.Pipeline, *core.Unit) {
	t.Helper()
	p := core.NewPipeline(opt)
	u, err := p.Compile(bm.Name+".ec", bm.Source(quickFaultParams(bm)))
	if err != nil {
		t.Fatalf("%s: %v", bm.Name, err)
	}
	return p, u
}

func faultRun(t *testing.T, p *core.Pipeline, u *core.Unit, fc *earthsim.FaultConfig) *earthsim.Result {
	t.Helper()
	r, err := p.Run(u, core.RunConfig{Nodes: faultTestNodes, Faults: fc,
		Fuel: defaultFuel, Deadline: defaultDeadline})
	if err != nil {
		t.Fatalf("run (faults %s): %v", fc, err)
	}
	return r
}

// TestFaultDeterminism: identical seed + spec must give bit-identical runs —
// same simulated time, same program-visible result, same fault counters, and
// a byte-identical trace export.
func TestFaultDeterminism(t *testing.T) {
	bm := olden.ByName("power")
	fc, err := earthsim.ParseFaultSpec("drop=0.05,dup=0.01,delay=3,seed=7")
	if err != nil {
		t.Fatal(err)
	}

	run := func() (*earthsim.Result, []byte) {
		rec := trace.NewRecorder(faultTestNodes)
		p, u := compileOlden(t, bm, core.Options{Optimize: true, Trace: rec})
		r := faultRun(t, p, u, fc)
		var buf bytes.Buffer
		if err := rec.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return r, buf.Bytes()
	}
	r1, t1 := run()
	r2, t2 := run()

	if r1.Time != r2.Time {
		t.Errorf("simulated time differs across identical seeds: %d vs %d", r1.Time, r2.Time)
	}
	if r1.Visible() != r2.Visible() {
		t.Errorf("visible result differs:\n%s\n%s", r1.Visible(), r2.Visible())
	}
	if s1, s2 := r1.Faults.String(), r2.Faults.String(); s1 != s2 {
		t.Errorf("fault counters differ:\n%s\n%s", s1, s2)
	}
	if !bytes.Equal(t1, t2) {
		t.Errorf("trace export differs across identical seeds (%d vs %d bytes)", len(t1), len(t2))
	}
}

// TestFaultVisibleEquivalence: across all five benchmarks and two different
// seeds, every faulty run must complete (via retries) with a program-visible
// Result identical to the fault-free run — faults may change timing, never
// semantics.
func TestFaultVisibleEquivalence(t *testing.T) {
	seeds := []uint64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, bm := range olden.All() {
		p, u := compileOlden(t, bm, core.Options{Optimize: true})
		base := faultRun(t, p, u, nil)
		for _, seed := range seeds {
			fc := &earthsim.FaultConfig{Drop: 0.05, Dup: 0.01, Seed: seed}
			r := faultRun(t, p, u, fc)
			if got, want := r.Visible(), base.Visible(); got != want {
				t.Errorf("%s seed=%d: visible result diverged under faults\n got %s\nwant %s",
					bm.Name, seed, got, want)
			}
			if r.Faults == nil || r.Faults.Drops == 0 || r.Faults.Retries == 0 {
				t.Errorf("%s seed=%d: expected injected drops and retries, got %v",
					bm.Name, seed, r.Faults)
			}
		}
	}
}
