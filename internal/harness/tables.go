package harness

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/earthsim"
	"repro/internal/olden"
	"repro/internal/trace"
)

// tableCache memoizes compiles across the tables' repeated
// (benchmark × machine size) sweeps: Table III compiles each source once
// per optimization mode instead of once per machine size. The fingerprint
// keys on the options, so simple/optimized/stats builds never collide.
var tableCache = cache.New(0, "")

// SimWorkers, when positive, makes every harness simulator run use the
// sharded event loop with that many workers (core.RunConfig.SimWorkers;
// paperbench's -sim-j). All measurements are bit-identical either way — the
// sharded engine's determinism contract — so this is purely a host-side
// throughput knob for the sweeps.
var SimWorkers int

// compileUnit is the harness's one compile path: every table builds its
// units through the same CompileRequest surface (and shared cache) that
// earthcc, earthrun, and earthd use.
func compileUnit(p *core.Pipeline, name, src string) (*core.Unit, error) {
	res, err := p.Do(core.CompileRequest{Name: name, Source: src})
	if err != nil {
		return nil, err
	}
	return res.Unit, nil
}

// Table2 renders the benchmark registry (the paper's Table II), with both
// the paper's problem sizes and this harness's scaled defaults.
func Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: Benchmark Programs\n")
	fmt.Fprintf(&b, "%-10s %-62s %-28s %s\n", "Benchmark", "Description", "Paper size", "Harness size")
	for _, bm := range olden.All() {
		fmt.Fprintf(&b, "%-10s %-62s %-28s %s\n",
			bm.Name, bm.Description, bm.PaperSize, harnessSize(bm))
	}
	return b.String()
}

func harnessSize(bm *olden.Benchmark) string {
	p := bm.DefaultParams
	switch bm.Name {
	case "power":
		return fmt.Sprintf("%d laterals x5x10 (%d leaves), %d iters", p.Size, p.Size*50, p.Iters)
	case "perimeter":
		return fmt.Sprintf("depth %d (%dx%d image)", p.Size, 1<<p.Size, 1<<p.Size)
	case "tsp":
		return fmt.Sprintf("%d cities", p.Size)
	case "health":
		return fmt.Sprintf("%d levels, %d iters", p.Size, p.Iters)
	case "voronoi":
		return fmt.Sprintf("%d points", p.Size)
	}
	return ""
}

// RunPair compiles and runs one benchmark in simple and optimized form on
// the given machine size, verifying the outputs agree.
func RunPair(bm *olden.Benchmark, params olden.Params, nodes int) (simple, opt *earthsim.Result, err error) {
	simple, opt, _, err = runPair(bm, params, nodes, false)
	return simple, opt, err
}

// runPair is RunPair plus, when stats is set, the optimized build's compile
// statistics.
func runPair(bm *olden.Benchmark, params olden.Params, nodes int, stats bool) (simple, opt *earthsim.Result, cs *trace.CompileStats, err error) {
	src := bm.Source(params)
	sp := core.NewPipeline(core.Options{Cache: tableCache})
	su, err := compileUnit(sp, bm.Name+".ec", src)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s simple: %w", bm.Name, err)
	}
	simple, err = sp.Run(su, core.RunConfig{Nodes: nodes, SimWorkers: SimWorkers})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s simple: %w", bm.Name, err)
	}
	op := core.NewPipeline(core.Options{Optimize: true, Stats: stats, Cache: tableCache})
	ou, err := compileUnit(op, bm.Name+".ec", src)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s optimized: %w", bm.Name, err)
	}
	opt, err = op.Run(ou, core.RunConfig{Nodes: nodes, SimWorkers: SimWorkers})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s optimized: %w", bm.Name, err)
	}
	if simple.Output != opt.Output {
		return nil, nil, nil, fmt.Errorf("%s: optimized output diverged:\nsimple: %q\nopt:    %q",
			bm.Name, simple.Output, opt.Output)
	}
	return simple, opt, ou.Stats, nil
}

// -------------------------------------------------------------- Figure 10 ---

// Fig10Row is one benchmark's dynamic communication counts.
type Fig10Row struct {
	Benchmark    string
	TotalSimple  int64 // total communication ops, simple version
	SimpleReads  int64
	SimpleWrites int64
	SimpleBlk    int64
	OptReads     int64
	OptWrites    int64
	OptBlk       int64
	// Remaining message classes, beyond the figure's three data columns
	// (these are unchanged by the optimization in principle; the table
	// prints both sides so regressions show).
	SimpleShared int64
	SimpleRPC    int64
	SimpleAlloc  int64
	OptShared    int64
	OptRPC       int64
	OptAlloc     int64
	// Stats is the optimized build's compile statistics (per-phase timings
	// plus placement/selection counters).
	Stats *trace.CompileStats `json:",omitempty"`
}

// OptTotal is the optimized version's total.
func (r Fig10Row) OptTotal() int64 { return r.OptReads + r.OptWrites + r.OptBlk }

// Normalized returns the optimized total normalized to simple = 100.
func (r Fig10Row) Normalized() float64 {
	if r.TotalSimple == 0 {
		return 0
	}
	return 100 * float64(r.OptTotal()) / float64(r.TotalSimple)
}

// Fig10Result holds the Figure 10 reproduction.
type Fig10Result struct {
	Nodes int
	Rows  []Fig10Row
}

// MeasureFig10 runs every benchmark, simple and optimized, counting dynamic
// communication operations (read-data / write-data / blkmov), the paper's
// Figure 10. Operations through the EARTH runtime are counted whether the
// target is remote or local (pseudo-remote), as both cost runtime calls.
func MeasureFig10(nodes int, paramsFor func(*olden.Benchmark) olden.Params) (*Fig10Result, error) {
	res := &Fig10Result{Nodes: nodes}
	for _, bm := range olden.All() {
		row, err := MeasureFig10Single(bm, paramsFor(bm), nodes)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// String renders Figure 10 as a normalized table (simple = 100).
func (r *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: Dynamic communication counts (normalized, simple = 100), %d nodes\n", r.Nodes)
	fmt.Fprintf(&b, "%-10s %12s | %8s %8s %8s | %8s %8s %8s | %9s\n",
		"Benchmark", "simple ops", "s.read", "s.write", "s.blk", "o.read", "o.write", "o.blk", "optimized")
	for _, row := range r.Rows {
		norm := func(v int64) float64 {
			if row.TotalSimple == 0 {
				return 0
			}
			return 100 * float64(v) / float64(row.TotalSimple)
		}
		fmt.Fprintf(&b, "%-10s %12d | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | %8.1f%%\n",
			row.Benchmark, row.TotalSimple,
			norm(row.SimpleReads), norm(row.SimpleWrites), norm(row.SimpleBlk),
			norm(row.OptReads), norm(row.OptWrites), norm(row.OptBlk),
			row.Normalized())
	}
	b.WriteString(r.classBreakdown())
	b.WriteString(r.phaseTable())
	return b.String()
}

// classBreakdown renders the remaining message classes (absolute counts,
// simple vs optimized) under the normalized figure.
func (r *Fig10Result) classBreakdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nOther message classes (absolute ops, simple / optimized):\n")
	fmt.Fprintf(&b, "%-10s %10s %10s | %10s %10s | %10s %10s\n",
		"Benchmark", "s.shared", "o.shared", "s.rpc", "o.rpc", "s.alloc", "o.alloc")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10d %10d | %10d %10d | %10d %10d\n",
			row.Benchmark,
			row.SimpleShared, row.OptShared,
			row.SimpleRPC, row.OptRPC,
			row.SimpleAlloc, row.OptAlloc)
	}
	return b.String()
}

// phaseTable renders per-benchmark compiler phase timings and selection
// counters for the optimized builds (rows without stats are skipped).
func (r *Fig10Result) phaseTable() string {
	// Collect the union of phase names in first-seen order so columns line
	// up even if a benchmark skips a phase.
	var names []string
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if row.Stats == nil {
			continue
		}
		for _, p := range row.Stats.Phases {
			if !seen[p.Name] {
				seen[p.Name] = true
				names = append(names, p.Name)
			}
		}
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nCompiler phase timings, optimized build (ms):\n")
	fmt.Fprintf(&b, "%-10s", "Benchmark")
	for _, n := range names {
		fmt.Fprintf(&b, " %9s", n)
	}
	fmt.Fprintf(&b, " %9s\n", "total")
	for _, row := range r.Rows {
		if row.Stats == nil {
			continue
		}
		byName := map[string]int64{}
		for _, p := range row.Stats.Phases {
			byName[p.Name] += p.Ns
		}
		fmt.Fprintf(&b, "%-10s", row.Benchmark)
		for _, n := range names {
			fmt.Fprintf(&b, " %9.3f", float64(byName[n])/1e6)
		}
		fmt.Fprintf(&b, " %9.3f\n", float64(row.Stats.TotalNs())/1e6)
	}
	fmt.Fprintf(&b, "\nSelection results, optimized build:\n")
	fmt.Fprintf(&b, "%-10s %12s %12s | %10s %10s %10s | %10s %10s\n",
		"Benchmark", "r.cand", "w.cand", "r.pipe", "r.blk", "r.elim", "w.pipe", "w.blk")
	for _, row := range r.Rows {
		if row.Stats == nil {
			continue
		}
		s := row.Stats
		fmt.Fprintf(&b, "%-10s %12d %12d | %10d %10d %10d | %10d %10d\n",
			row.Benchmark, s.CandidateReads, s.CandidateWrites,
			s.PipelinedReads, s.BlockedReads, s.ReadsEliminated,
			s.PipelinedWrites, s.BlockedWrites)
	}
	return b.String()
}

// -------------------------------------------------------------- Table III ---

// Table3Entry is one (benchmark, processor-count) measurement.
type Table3Entry struct {
	Procs       int
	SimpleNs    int64
	OptNs       int64
	SimpleSpeed float64 // vs sequential
	OptSpeed    float64
	Improvement float64 // percent
}

// Table3Row is one benchmark's scaling results.
type Table3Row struct {
	Benchmark    string
	SequentialNs int64
	Entries      []Table3Entry
	PaperImpr16  float64
}

// Table3Result is the reproduction of the paper's Table III.
type Table3Result struct {
	Rows []Table3Row
}

// DefaultProcs are the machine sizes of Table III.
var DefaultProcs = []int{1, 2, 4, 8, 16}

// MeasureTable3 reproduces Table III: sequential baseline plus simple and
// optimized parallel versions on each machine size.
func MeasureTable3(procs []int, paramsFor func(*olden.Benchmark) olden.Params) (*Table3Result, error) {
	if len(procs) == 0 {
		procs = DefaultProcs
	}
	res := &Table3Result{}
	for _, bm := range olden.All() {
		params := paramsFor(bm)
		src := bm.Source(params)
		p := core.NewPipeline(core.Options{Cache: tableCache})
		u, err := compileUnit(p, bm.Name+".ec", src)
		if err != nil {
			return nil, err
		}
		seq, err := p.Run(u, core.RunConfig{Nodes: 1, Sequential: true})
		if err != nil {
			return nil, fmt.Errorf("%s sequential: %w", bm.Name, err)
		}
		row := Table3Row{
			Benchmark:    bm.Name,
			SequentialNs: seq.Time,
			PaperImpr16:  bm.PaperImprovement16,
		}
		for _, p := range procs {
			simple, opt, err := RunPair(bm, params, p)
			if err != nil {
				return nil, err
			}
			if seq.Output != simple.Output {
				return nil, fmt.Errorf("%s: sequential output diverged from parallel", bm.Name)
			}
			e := Table3Entry{
				Procs:    p,
				SimpleNs: simple.Time,
				OptNs:    opt.Time,
			}
			e.SimpleSpeed = float64(seq.Time) / float64(simple.Time)
			e.OptSpeed = float64(seq.Time) / float64(opt.Time)
			e.Improvement = 100 * (1 - float64(opt.Time)/float64(simple.Time))
			row.Entries = append(row.Entries, e)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders Table III in the paper's layout.
func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: Performance Improvement Results (simulated EARTH-MANNA)\n")
	fmt.Fprintf(&b, "%-10s %6s %12s %12s %12s %8s %8s %8s\n",
		"Benchmark", "procs", "seq (ms)", "simple (ms)", "opt (ms)",
		"s.speed", "o.speed", "impr%")
	for _, row := range r.Rows {
		for i, e := range row.Entries {
			name, seq := "", ""
			if i == 0 {
				name = row.Benchmark
				seq = fmt.Sprintf("%.2f", float64(row.SequentialNs)/1e6)
			}
			fmt.Fprintf(&b, "%-10s %6d %12s %12.2f %12.2f %8.2f %8.2f %7.2f%%\n",
				name, e.Procs, seq,
				float64(e.SimpleNs)/1e6, float64(e.OptNs)/1e6,
				e.SimpleSpeed, e.OptSpeed, e.Improvement)
		}
		last := row.Entries[len(row.Entries)-1]
		fmt.Fprintf(&b, "%-10s %34s improvement at %d procs: %.2f%% (paper: %.2f%%)\n",
			"", "", last.Procs, last.Improvement, row.PaperImpr16)
	}
	return b.String()
}

// DefaultParams returns each benchmark's default (scaled-down) parameters.
func DefaultParams(bm *olden.Benchmark) olden.Params { return bm.DefaultParams }

// MeasureFig10Single measures the Figure 10 quantities for one benchmark,
// plus the supplementary class breakdown and compile statistics.
func MeasureFig10Single(bm *olden.Benchmark, params olden.Params, nodes int) (*Fig10Row, error) {
	simple, opt, cs, err := runPair(bm, params, nodes, true)
	if err != nil {
		return nil, err
	}
	row := &Fig10Row{
		Benchmark:    bm.Name,
		SimpleReads:  simple.Counts.RemoteReads + simple.Counts.LocalReads,
		SimpleWrites: simple.Counts.RemoteWrites + simple.Counts.LocalWrites,
		SimpleBlk:    simple.Counts.RemoteBlk + simple.Counts.LocalBlk,
		OptReads:     opt.Counts.RemoteReads + opt.Counts.LocalReads,
		OptWrites:    opt.Counts.RemoteWrites + opt.Counts.LocalWrites,
		OptBlk:       opt.Counts.RemoteBlk + opt.Counts.LocalBlk,
		SimpleShared: simple.Counts.SharedOps,
		SimpleRPC:    simple.Counts.RPCs,
		SimpleAlloc:  simple.Counts.Allocs,
		OptShared:    opt.Counts.SharedOps,
		OptRPC:       opt.Counts.RPCs,
		OptAlloc:     opt.Counts.Allocs,
		Stats:        cs,
	}
	row.TotalSimple = row.SimpleReads + row.SimpleWrites + row.SimpleBlk
	return row, nil
}

// Bars renders Figure 10 as normalized ASCII bars (the paper's figure is a
// bar chart): for each benchmark, the simple bar (always full height) and
// the optimized bar, segmented into read-data (r), write-data (w) and
// blkmov (b) components.
func (r *Fig10Result) Bars() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 (bars): normalized communication counts, simple = 100\n")
	const width = 50
	seg := func(reads, writes, blk, total int64) string {
		if total == 0 {
			return ""
		}
		n := func(v int64) int { return int(float64(v) / float64(total) * width) }
		return strings.Repeat("r", n(reads)) + strings.Repeat("w", n(writes)) +
			strings.Repeat("b", n(blk))
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s simple    |%-*s| 100.0%%\n", row.Benchmark, width,
			seg(row.SimpleReads, row.SimpleWrites, row.SimpleBlk, row.TotalSimple))
		fmt.Fprintf(&b, "%-10s optimized |%-*s| %.1f%%\n", "", width,
			seg(row.OptReads, row.OptWrites, row.OptBlk, row.TotalSimple),
			row.Normalized())
	}
	return b.String()
}
