package harness

import "testing"

// TestTable1Calibration checks the simulator reproduces the paper's Table I
// within 12% on every entry, and that the blocked-vs-pipelined crossover
// sits at three words (the basis for the selection threshold).
func TestTable1Calibration(t *testing.T) {
	res, err := MeasureTable1()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	paper := PaperTable1()
	for i, row := range res.Rows {
		p := paper[i]
		checkWithin(t, row.Operation+" sequential", row.Sequential, p.Sequential, 0.12)
		checkWithin(t, row.Operation+" pipelined", row.Pipelined, p.Pipelined, 0.12)
	}
}

func checkWithin(t *testing.T, what string, got, want int64, tol float64) {
	t.Helper()
	lo := float64(want) * (1 - tol)
	hi := float64(want) * (1 + tol)
	if float64(got) < lo || float64(got) > hi {
		t.Errorf("%s: got %dns, want %dns ±%.0f%%", what, got, want, tol*100)
	}
}
