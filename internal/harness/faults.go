package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/earthsim"
	"repro/internal/olden"
	"repro/internal/trace"
)

// Generous safety limits for harness runs: the Olden benchmarks at default
// parameters execute well under a million EU instructions, so a run that
// burns a billion — or two minutes of host time — is stuck, not slow.
const (
	defaultFuel     = int64(2_000_000_000)
	defaultDeadline = 2 * time.Minute
)

// FaultSweepEntry is one (benchmark, fault-spec) measurement.
type FaultSweepEntry struct {
	Spec        string
	Completed   bool
	Err         string `json:",omitempty"`
	TimeNs      int64
	Inflation   float64 // simulated time vs the fault-free run, percent
	VisibleOK   bool    // program-visible Result identical to fault-free
	Stats       *earthsim.FaultStats
	MaxAttempt  int
	RetriesRPC  int64
	RetriesData int64
}

// FaultSweepRow is one benchmark's sweep across fault specs.
type FaultSweepRow struct {
	Benchmark string
	BaseNs    int64 // fault-free optimized run
	Entries   []FaultSweepEntry
}

// FaultSweepResult is the reliable-messaging validation table: each Olden
// benchmark run optimized under increasing fault rates, checking that every
// run still completes (via retries) with a program-visible Result identical
// to the fault-free run.
type FaultSweepResult struct {
	Nodes int
	Seed  uint64
	Rows  []FaultSweepRow
}

// DefaultFaultSpecs are the sweep points printed by `paperbench -faultsweep`.
var DefaultFaultSpecs = []string{
	"drop=0.01",
	"drop=0.05,dup=0.01",
	"drop=0.05,dup=0.01,delay=3",
	"drop=0.10,dup=0.02,delay=5,stall=0.01",
}

// MeasureFaultSweep runs every benchmark optimized on the given machine size,
// fault-free and then under each fault spec with the given seed.
func MeasureFaultSweep(nodes int, specs []string, seed uint64, paramsFor func(*olden.Benchmark) olden.Params) (*FaultSweepResult, error) {
	if len(specs) == 0 {
		specs = DefaultFaultSpecs
	}
	res := &FaultSweepResult{Nodes: nodes, Seed: seed}
	for _, bm := range olden.All() {
		src := bm.Source(paramsFor(bm))
		p := core.NewPipeline(core.Options{Optimize: true, Cache: tableCache})
		u, err := compileUnit(p, bm.Name+".ec", src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bm.Name, err)
		}
		base, err := p.Run(u, core.RunConfig{Nodes: nodes, SimWorkers: SimWorkers,
			Fuel: defaultFuel, Deadline: defaultDeadline})
		if err != nil {
			return nil, fmt.Errorf("%s fault-free: %w", bm.Name, err)
		}
		row := FaultSweepRow{Benchmark: bm.Name, BaseNs: base.Time}
		for _, spec := range specs {
			fc, err := earthsim.ParseFaultSpec(spec)
			if err != nil {
				return nil, fmt.Errorf("fault spec %q: %w", spec, err)
			}
			if fc != nil && fc.Seed == 0 {
				fc.Seed = seed
			}
			e := FaultSweepEntry{Spec: spec}
			r, err := p.Run(u, core.RunConfig{Nodes: nodes, Faults: fc,
				SimWorkers: SimWorkers, Fuel: defaultFuel, Deadline: defaultDeadline})
			if err != nil {
				e.Err = err.Error()
			} else {
				e.Completed = true
				e.TimeNs = r.Time
				if base.Time > 0 {
					e.Inflation = 100 * (float64(r.Time)/float64(base.Time) - 1)
				}
				e.VisibleOK = r.Visible() == base.Visible()
				e.Stats = r.Faults
				if s := r.Faults; s != nil {
					e.MaxAttempt = s.MaxAttempt
					e.RetriesRPC = s.RetriesByClass[trace.ClassRPC] + s.RetriesByClass[trace.ClassReply]
					e.RetriesData = s.Retries - e.RetriesRPC
				}
			}
			row.Entries = append(row.Entries, e)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the sweep as a table.
func (r *FaultSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep: reliable messaging under injected faults, %d nodes, seed %d\n", r.Nodes, r.Seed)
	fmt.Fprintf(&b, "%-10s %-40s %9s %8s %8s %8s %6s %8s %s\n",
		"Benchmark", "faults", "time(ms)", "infl%", "retries", "drops", "maxTry", "dupSupp", "visible")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-40s %9.2f %8s %8s %8s %6s %8s %s\n",
			row.Benchmark, "none", float64(row.BaseNs)/1e6, "-", "-", "-", "-", "-", "baseline")
		for _, e := range row.Entries {
			if !e.Completed {
				fmt.Fprintf(&b, "%-10s %-40s FAILED: %s\n", "", e.Spec, e.Err)
				continue
			}
			visible := "identical"
			if !e.VisibleOK {
				visible = "DIVERGED"
			}
			s := e.Stats
			fmt.Fprintf(&b, "%-10s %-40s %9.2f %7.1f%% %8d %8d %6d %8d %s\n",
				"", e.Spec, float64(e.TimeNs)/1e6, e.Inflation,
				s.Retries, s.Drops, s.MaxAttempt, s.DupSuppressed, visible)
		}
	}
	return b.String()
}

// Ok reports whether every swept run completed with an identical
// program-visible result.
func (r *FaultSweepResult) Ok() bool {
	for _, row := range r.Rows {
		for _, e := range row.Entries {
			if !e.Completed || !e.VisibleOK {
				return false
			}
		}
	}
	return true
}
