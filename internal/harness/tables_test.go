package harness

import (
	"testing"

	"repro/internal/olden"
)

// quickParams shrinks problem sizes for fast CI runs.
func quickParams(bm *olden.Benchmark) olden.Params {
	p := bm.DefaultParams
	switch bm.Name {
	case "power":
		p.Size, p.Iters = 8, 2
	case "perimeter":
		p.Size = 5
	case "tsp":
		p.Size = 64
	case "health":
		p.Size, p.Iters = 3, 20
	case "voronoi":
		p.Size = 96
	}
	return p
}

func TestTable2(t *testing.T) {
	out := Table2()
	t.Log("\n" + out)
	for _, bm := range olden.All() {
		if !containsStr(out, bm.Name) {
			t.Errorf("Table II missing %s", bm.Name)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestFig10Shape checks the headline shape of Figure 10: the optimized
// version issues strictly fewer communication operations on every
// benchmark, with scalar read/write traffic falling.
func TestFig10Shape(t *testing.T) {
	res, err := MeasureFig10(4, quickParams)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	for _, row := range res.Rows {
		if row.OptTotal() >= row.TotalSimple {
			t.Errorf("%s: optimized ops %d not below simple %d",
				row.Benchmark, row.OptTotal(), row.TotalSimple)
		}
		if row.OptReads+row.OptWrites >= row.SimpleReads+row.SimpleWrites {
			t.Errorf("%s: optimized scalar ops %d not below simple %d",
				row.Benchmark, row.OptReads+row.OptWrites, row.SimpleReads+row.SimpleWrites)
		}
	}
}

// TestTable3Shape checks Table III's shape on a reduced grid: optimization
// never hurts, and every benchmark shows an improvement on 4 nodes.
func TestTable3Shape(t *testing.T) {
	res, err := MeasureTable3([]int{1, 4}, quickParams)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	for _, row := range res.Rows {
		for _, e := range row.Entries {
			// On one node every operation is pseudo-remote and the
			// blocked-vs-pipelined balance is fine (the paper discusses
			// exactly this trade-off); allow small single-node regressions.
			if e.Improvement < -3.0 {
				t.Errorf("%s procs=%d: optimization slowed things down by %.2f%%",
					row.Benchmark, e.Procs, -e.Improvement)
			}
		}
		last := row.Entries[len(row.Entries)-1]
		min := 0.0
		if row.Benchmark == "perimeter" {
			// At simulable problem sizes perimeter is dominated by the
			// tree walk's EU work rather than communication; the count
			// reduction (Figure 10) is reproduced but the time gain is
			// within noise. See EXPERIMENTS.md.
			min = -3.5
		}
		if last.Improvement <= min {
			t.Errorf("%s: no improvement at %d procs (%.2f%%)",
				row.Benchmark, last.Procs, last.Improvement)
		}
	}
}
