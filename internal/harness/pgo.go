package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/olden"
)

// PGORow is one benchmark's static-heuristic vs profile-guided comparison.
type PGORow struct {
	Benchmark  string
	SimpleOps  int64 // total communication ops, simple version
	StaticOps  int64 // optimized with the ×10/÷2/÷k heuristics
	PGOOps     int64 // optimized with measured frequencies
	StaticTime int64 // simulated ns
	PGOTime    int64
}

// PGOResult is the profile-guided-optimization ablation table.
type PGOResult struct {
	Nodes int
	Rows  []PGORow
}

// MeasurePGO runs the PGO ablation over every Olden benchmark: the simple
// and statically-optimized versions (output-verified against each other),
// then the two-pass profile-guided flow (instrumented simple run feeding a
// recompile), verifying the PGO version's output too. Op totals follow the
// Figure 10 convention: runtime reads + writes + block moves, whether the
// target turned out remote or local.
func MeasurePGO(nodes int, paramsFor func(*olden.Benchmark) olden.Params) (*PGOResult, error) {
	res := &PGOResult{Nodes: nodes}
	for _, bm := range olden.All() {
		params := paramsFor(bm)
		simple, static, err := RunPair(bm, params, nodes)
		if err != nil {
			return nil, err
		}
		src := bm.Source(params)
		p := core.NewPipeline(core.Options{Optimize: true})
		u, _, err := p.ProfileCycle(bm.Name+".ec", src, core.RunConfig{Nodes: nodes, SimWorkers: SimWorkers})
		if err != nil {
			return nil, fmt.Errorf("%s pgo: %w", bm.Name, err)
		}
		pgo, err := p.Run(u, core.RunConfig{Nodes: nodes, SimWorkers: SimWorkers})
		if err != nil {
			return nil, fmt.Errorf("%s pgo run: %w", bm.Name, err)
		}
		if pgo.Output != simple.Output {
			return nil, fmt.Errorf("%s: profile-guided output diverged:\nsimple: %q\npgo:    %q",
				bm.Name, simple.Output, pgo.Output)
		}
		res.Rows = append(res.Rows, PGORow{
			Benchmark: bm.Name,
			SimpleOps: simple.Counts.RemoteReads + simple.Counts.LocalReads +
				simple.Counts.RemoteWrites + simple.Counts.LocalWrites +
				simple.Counts.RemoteBlk + simple.Counts.LocalBlk,
			StaticOps: static.Counts.RemoteReads + static.Counts.LocalReads +
				static.Counts.RemoteWrites + static.Counts.LocalWrites +
				static.Counts.RemoteBlk + static.Counts.LocalBlk,
			PGOOps: pgo.Counts.RemoteReads + pgo.Counts.LocalReads +
				pgo.Counts.RemoteWrites + pgo.Counts.LocalWrites +
				pgo.Counts.RemoteBlk + pgo.Counts.LocalBlk,
			StaticTime: static.Time,
			PGOTime:    pgo.Time,
		})
	}
	return res, nil
}

// String renders the PGO ablation table.
func (r *PGOResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PGO ablation: static-heuristic vs profile-guided optimization, %d nodes\n", r.Nodes)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %8s | %12s %12s %8s\n",
		"Benchmark", "simple ops", "static ops", "pgo ops", "Δops",
		"static (ms)", "pgo (ms)", "Δtime")
	for _, row := range r.Rows {
		dOps := row.PGOOps - row.StaticOps
		dTime := 0.0
		if row.StaticTime != 0 {
			dTime = 100 * (1 - float64(row.PGOTime)/float64(row.StaticTime))
		}
		fmt.Fprintf(&b, "%-10s %12d %12d %12d %8d | %12.2f %12.2f %+7.2f%%\n",
			row.Benchmark, row.SimpleOps, row.StaticOps, row.PGOOps, dOps,
			float64(row.StaticTime)/1e6, float64(row.PGOTime)/1e6, dTime)
	}
	return b.String()
}
