// Package harness regenerates every table and figure of the paper's
// evaluation section (§5) on the simulated EARTH-MANNA machine: Table I
// (communication costs), Table II (benchmark descriptions), Figure 10
// (dynamic communication counts), and Table III (performance improvement).
package harness

import (
	"fmt"
	"strings"

	"repro/internal/earthc"
	"repro/internal/earthsim"
	"repro/internal/threaded"
)

var (
	ltOp  = earthc.Lt
	addOp = earthc.Add
)

// Table1Row is one measured operation cost.
type Table1Row struct {
	Operation  string
	Sequential int64 // ns per op, dependent issue
	Pipelined  int64 // ns per op, back-to-back issue
}

// Table1Result holds the measured communication costs.
type Table1Result struct {
	Rows []Table1Row
}

// PaperTable1 reports the published EARTH-MANNA numbers for comparison.
func PaperTable1() []Table1Row {
	return []Table1Row{
		{Operation: "Read word", Sequential: 7109, Pipelined: 1908},
		{Operation: "Write word", Sequential: 6458, Pipelined: 1749},
		{Operation: "Blkmov word", Sequential: 9700, Pipelined: 2602},
	}
}

// String renders the table next to the paper's numbers.
func (r *Table1Result) String() string {
	var b strings.Builder
	paper := PaperTable1()
	fmt.Fprintf(&b, "Table I: Cost of communication on (simulated) EARTH-MANNA\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %14s %14s\n", "Operation",
		"Seq (sim)", "Seq (paper)", "Pipe (sim)", "Pipe (paper)")
	for i, row := range r.Rows {
		p := Table1Row{}
		if i < len(paper) {
			p = paper[i]
		}
		fmt.Fprintf(&b, "%-14s %12dns %12dns %12dns %12dns\n",
			row.Operation, row.Sequential, p.Sequential, row.Pipelined, p.Pipelined)
	}
	return b.String()
}

// opKind selects the microbenchmark operation.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opBlk
)

// MeasureTable1 runs the microbenchmarks: per-operation cost is measured as
// the marginal time of adding operations to a steady-state loop, isolating
// the operation from loop overhead (time(2N) - time(N)) / N.
func MeasureTable1() (*Table1Result, error) {
	res := &Table1Result{}
	ops := []struct {
		name string
		kind opKind
	}{
		{"Read word", opRead},
		{"Write word", opWrite},
		{"Blkmov word", opBlk},
	}
	const n = 400
	for _, op := range ops {
		seq, err := runMicro(op.kind, true, n)
		if err != nil {
			return nil, err
		}
		seq2, err := runMicro(op.kind, true, 2*n)
		if err != nil {
			return nil, err
		}
		pipe, err := runMicro(op.kind, false, n)
		if err != nil {
			return nil, err
		}
		pipe2, err := runMicro(op.kind, false, 2*n)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Operation:  op.name,
			Sequential: (seq2 - seq) / n,
			Pipelined:  (pipe2 - pipe) / n,
		})
	}
	return res, nil
}

// runMicro builds a threaded-code microbenchmark directly: node 0 performs n
// operations against memory on node 1. In sequential mode each operation's
// completion is consumed before the next issues; in pipelined mode all
// operations issue back to back and synchronize once at the end.
func runMicro(kind opKind, sequential bool, n int) (int64, error) {
	// Frame layout: 0 = remote pointer, 1 = loop counter, 2 = limit,
	// 3 = value/sink, 4 = scratch one, 5.. = landing slots.
	const (
		sPtr   = 0
		sCount = 1
		sLimit = 2
		sVal   = 3
		sOne   = 4
		sLand  = 5
	)
	fc := &threaded.FnCode{Name: "micro"}
	emit := func(in threaded.Instr) int {
		fc.Code = append(fc.Code, in)
		return len(fc.Code) - 1
	}
	// Allocate remote storage on node 1 (blocks until the address arrives).
	emit(threaded.Instr{Op: threaded.OpLoadImm, A: sOne, Imm: 1})
	emit(threaded.Instr{Op: threaded.OpAlloc, A: sPtr, B: sOne, C: 8})
	emit(threaded.Instr{Op: threaded.OpLoadImm, A: sCount, Imm: 0})
	emit(threaded.Instr{Op: threaded.OpLoadImm, A: sLimit, Imm: int64(n)})
	top := len(fc.Code)
	// loop test
	jEnd := emit(threaded.Instr{Op: threaded.OpBin, A: sVal, B: sCount, C: sLimit, BOp: ltOp})
	jEnd = emit(threaded.Instr{Op: threaded.OpJmpIfNot, A: sVal})
	// window is the software-pipelining depth for the pipelined variants:
	// each loop iteration synchronizes on the reply issued one iteration
	// earlier into the same landing slot, keeping `window` operations in
	// flight (so the per-iteration step is `window` ops).
	const window = 8
	perIter := int64(1)
	switch kind {
	case opRead:
		if sequential {
			emit(threaded.Instr{Op: threaded.OpGet, A: sLand, B: sPtr, C: 0})
			emit(threaded.Instr{Op: threaded.OpMove, A: sVal, B: sLand}) // sync
		} else {
			perIter = window
			for j := 0; j < window; j++ {
				emit(threaded.Instr{Op: threaded.OpMove, A: sVal, B: sLand + j})
				emit(threaded.Instr{Op: threaded.OpGet, A: sLand + j, B: sPtr, C: 0})
			}
		}
	case opWrite:
		emit(threaded.Instr{Op: threaded.OpPut, A: sVal, B: sPtr, C: 0})
		if sequential {
			emit(threaded.Instr{Op: threaded.OpFence})
		}
	case opBlk:
		if sequential {
			emit(threaded.Instr{Op: threaded.OpBlkGet, A: sLand, B: sPtr, C: 0, D: 1})
			emit(threaded.Instr{Op: threaded.OpMove, A: sVal, B: sLand}) // sync
		} else {
			perIter = window
			for j := 0; j < window; j++ {
				emit(threaded.Instr{Op: threaded.OpMove, A: sVal, B: sLand + j})
				emit(threaded.Instr{Op: threaded.OpBlkGet, A: sLand + j, B: sPtr, C: 0, D: 1})
			}
		}
	}
	emit(threaded.Instr{Op: threaded.OpLoadImm, A: sVal, Imm: perIter})
	emit(threaded.Instr{Op: threaded.OpBin, A: sCount, B: sCount, C: sVal, BOp: addOp})
	emit(threaded.Instr{Op: threaded.OpJmp, C: top})
	end := len(fc.Code)
	fc.Code[jEnd].C = end
	// Synchronize all outstanding communication: drain the landing window,
	// then fence writes (fiber end also drains any remaining reads).
	for j := 0; j < window; j++ {
		emit(threaded.Instr{Op: threaded.OpMove, A: sVal, B: sLand + j})
	}
	emit(threaded.Instr{Op: threaded.OpFence})
	emit(threaded.Instr{Op: threaded.OpRet, A: -1})
	fc.NSlots = sLand + window + 1
	prog := &threaded.Program{
		Funcs:         map[string]*threaded.FnCode{"main": fc},
		Main:          fc,
		GlobalSlot:    map[string]int{},
		SharedGlobals: map[string]bool{},
	}
	m := earthsim.New(prog, earthsim.DefaultConfig(2))
	r, err := m.Run()
	if err != nil {
		return 0, fmt.Errorf("micro(kind=%d seq=%v): %w", kind, sequential, err)
	}
	return r.Time, nil
}
