package simple

import (
	"strings"
	"testing"

	"repro/internal/earthc"
)

func tv(name string) *Var { return &Var{Name: name, Type: &earthc.PrimType{Kind: earthc.Int}} }

func TestBasicTextForms(t *testing.T) {
	p := &Var{Name: "p", Type: &earthc.PtrType{Elem: &earthc.StructRef{Name: "P"}}}
	x := tv("x")
	bc := &Var{Name: "bcomm1", Kind: VarBComm, Size: 3}
	cases := []struct {
		b    *Basic
		want string
	}{
		{&Basic{Kind: KAssign, Lhs: VarLV{V: x}, Rhs: LoadRV{P: p, Field: "a", Off: 0}},
			"x = p->a;"},
		{&Basic{Kind: KAssign, Lhs: StoreLV{P: p, Field: "a"}, Rhs: AtomRV{A: IntAtom{Val: 3}}},
			"p->a = 3;"},
		{&Basic{Kind: KGetF, Dst: x, P: p, Field: "a"},
			"x = p->a; /* get_sync */"},
		{&Basic{Kind: KPutF, P: p, Field: "a", Val: VarAtom{V: x}},
			"p->a = x; /* put_sync */"},
		{&Basic{Kind: KPutF, P: p, Field: "a", Local: bc, Off2: 0},
			"p->a = bcomm1.a; /* put_sync */"},
		{&Basic{Kind: KBlkRead, P: p, Local: bc, Size: 3},
			"blkmov(p, &bcomm1, 3); /* read */"},
		{&Basic{Kind: KBlkWrite, P: p, Local: bc, Size: 3},
			"blkmov(&bcomm1, p, 3); /* write */"},
		{&Basic{Kind: KReturn, Val: VarAtom{V: x}},
			"return(x);"},
		{&Basic{Kind: KReturn},
			"return;"},
		{&Basic{Kind: KAlloc, Dst: x, StructName: "P"},
			"x = alloc(P);"},
	}
	for _, c := range cases {
		if got := BasicText(c.b); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}

func TestCondString(t *testing.T) {
	x, y := tv("x"), tv("y")
	c := Cond{Op: earthc.Lt, X: VarAtom{V: x}, Y: VarAtom{V: y}}
	if c.String() != "x < y" {
		t.Errorf("got %q", c.String())
	}
	tt := Cond{Op: TruthTest, X: VarAtom{V: x}}
	if tt.String() != "x" {
		t.Errorf("got %q", tt.String())
	}
	if len(c.Atoms()) != 2 || len(tt.Atoms()) != 1 {
		t.Error("Atoms() arity wrong")
	}
}

func TestSubseqsCoverage(t *testing.T) {
	mk := func() (*Seq, *Seq, *Seq) { return &Seq{}, &Seq{}, &Seq{} }
	a, b, c := mk()
	cases := []struct {
		s    Stmt
		want int
	}{
		{&Seq{}, 1},
		{&If{Then: a, Else: b}, 2},
		{&While{Eval: a, Body: b}, 2},
		{&Do{Body: a, Eval: b}, 2},
		{&Forall{Eval: a, Body: b, Step: c}, 3},
		{&Par{Arms: []*Seq{a, b}}, 2},
		{&Switch{Cases: []*SwitchCase{{Body: a}, {Body: b}, {Body: c}}}, 3},
		{&Basic{}, 0},
	}
	for _, cse := range cases {
		if got := len(Subseqs(cse.s)); got != cse.want {
			t.Errorf("%T: got %d subseqs, want %d", cse.s, got, cse.want)
		}
	}
}

func TestWalkBasicsOrder(t *testing.T) {
	f := &Func{Name: "f"}
	b1 := f.NewBasic(KAssign)
	b2 := f.NewBasic(KAssign)
	b3 := f.NewBasic(KReturn)
	f.Body = &Seq{Stmts: []Stmt{
		b1,
		&If{Then: &Seq{Stmts: []Stmt{b2}}, Else: &Seq{}},
		b3,
	}}
	var order []int
	WalkBasics(f.Body, func(b *Basic) { order = append(order, b.Label) })
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("walk order %v", order)
	}
}

func TestFuncVarByName(t *testing.T) {
	f := &Func{Name: "f"}
	p := tv("p")
	f.Params = append(f.Params, p)
	l := f.AddLocal(tv("l"))
	if f.VarByName("p") != p || f.VarByName("l") != l {
		t.Error("VarByName lookup failed")
	}
	if f.VarByName("nope") != nil {
		t.Error("missing names must return nil")
	}
}

func TestFuncStringPrintsLabels(t *testing.T) {
	f := &Func{Name: "g", Ret: &earthc.PrimType{Kind: earthc.Int}}
	x := f.AddLocal(tv("x"))
	b := f.NewBasic(KAssign)
	b.Lhs = VarLV{V: x}
	b.Rhs = AtomRV{A: IntAtom{Val: 1}}
	r := f.NewBasic(KReturn)
	r.Val = VarAtom{V: x}
	f.Body = &Seq{Stmts: []Stmt{b, r}}
	out := FuncString(f, PrintOptions{Labels: true})
	if !strings.Contains(out, "S0: x = 1;") || !strings.Contains(out, "S1: return(x);") {
		t.Errorf("labels missing:\n%s", out)
	}
}
