// Package simple defines the SIMPLE intermediate representation used by the
// compiler, modeled on the McCAT SIMPLE representation the paper builds on:
// a compositional, structured IR whose basic statements are three-address
// code with *at most one* indirect (possibly remote) memory operation each.
//
// Statements are composed of basic statements and the structured compounds
// seq, if, switch, while, do, forall, and parallel sequences. There is no
// unstructured control flow: goto is eliminated on the AST before lowering.
// Every basic statement carries a unique integer label (the paper's "Si")
// used by the placement analysis' Dlists and by the communication selection
// rewriting.
package simple

import (
	"fmt"

	"repro/internal/earthc"
)

// VarKind says where a Var lives.
type VarKind int

// Variable kinds.
const (
	VarParam VarKind = iota
	VarLocal         // source-level local
	VarTemp          // compiler temporary introduced by simplification
	VarComm          // communication temporary (commN) introduced by selection
	VarBComm         // blocked communication buffer (bcommN)
	VarGlobal
)

// Var is a variable in SIMPLE form. All variables of a function, including
// temporaries, are function-scoped with unique names.
type Var struct {
	Name   string
	Type   earthc.Type
	Kind   VarKind
	Shared bool
	Size   int // words occupied in the frame (or global segment)
}

// IsPtr reports whether the variable has pointer type.
func (v *Var) IsPtr() bool {
	_, ok := v.Type.(*earthc.PtrType)
	return ok
}

// IsLocalPtr reports whether the variable is a pointer declared (or
// inferred) local: its pointee is in the executing node's memory.
func (v *Var) IsLocalPtr() bool {
	pt, ok := v.Type.(*earthc.PtrType)
	return ok && pt.Local
}

func (v *Var) String() string { return v.Name }

// ------------------------------------------------------------------ atoms ---

// Atom is a leaf operand: a variable or a constant.
type Atom interface {
	atom()
	String() string
}

// VarAtom references a variable.
type VarAtom struct{ V *Var }

// IntAtom is an integer constant.
type IntAtom struct{ Val int64 }

// FloatAtom is a floating constant.
type FloatAtom struct{ Val float64 }

// NullAtom is the null pointer constant.
type NullAtom struct{}

func (VarAtom) atom()   {}
func (IntAtom) atom()   {}
func (FloatAtom) atom() {}
func (NullAtom) atom()  {}

func (a VarAtom) String() string   { return a.V.Name }
func (a IntAtom) String() string   { return fmt.Sprintf("%d", a.Val) }
func (a FloatAtom) String() string { return fmt.Sprintf("%g", a.Val) }
func (NullAtom) String() string    { return "NULL" }

// AtomVar returns the variable of a VarAtom, or nil.
func AtomVar(a Atom) *Var {
	if va, ok := a.(VarAtom); ok {
		return va.V
	}
	return nil
}

// ---------------------------------------------------------------- rvalues ---

// Rvalue is the right-hand side of an assignment.
type Rvalue interface {
	rvalue()
	String() string
}

// AtomRV is a bare atom.
type AtomRV struct{ A Atom }

// UnaryRV is a unary operation on an atom.
type UnaryRV struct {
	Op earthc.UnOp
	X  Atom
}

// BinaryRV is a binary operation on atoms.
type BinaryRV struct {
	Op   earthc.BinOp
	X, Y Atom
}

// LoadRV reads through a pointer: p->Field (or *p when Field is ""). This is
// the (potentially) remote read of a basic statement. Off is the word offset
// of the field; Size is the number of words read (1 for scalars; >1 only for
// whole-struct reads, which lowering converts to block copies instead).
type LoadRV struct {
	P     *Var
	Field string
	Off   int
}

// LocalLoadRV reads a field of a struct-valued (or array) frame variable:
// base.Field / base[i]. Always a local memory access.
type LocalLoadRV struct {
	Base  *Var
	Field string // "" for array element access
	Off   int    // field offset; for arrays, the element size multiplier applies to Idx
	Idx   Atom   // nil unless array indexing
	Scale int    // element size in words when Idx != nil
}

// AddrRV takes the address of a frame or global variable, plus an optional
// word offset into it (&v, &v.f). Used for passing local buffers and for
// shared-variable intrinsics.
type AddrRV struct {
	X   *Var
	Off int
}

// FieldAddrRV computes the address of a field reached through a pointer:
// &p->f is p plus the field offset. This is pointer arithmetic, not a
// remote access.
type FieldAddrRV struct {
	P     *Var
	Field string
	Off   int
}

func (AtomRV) rvalue()      {}
func (UnaryRV) rvalue()     {}
func (BinaryRV) rvalue()    {}
func (LoadRV) rvalue()      {}
func (LocalLoadRV) rvalue() {}
func (AddrRV) rvalue()      {}
func (FieldAddrRV) rvalue() {}

func (r AtomRV) String() string  { return r.A.String() }
func (r UnaryRV) String() string { return r.Op.String() + r.X.String() }
func (r BinaryRV) String() string {
	return r.X.String() + " " + r.Op.String() + " " + r.Y.String()
}
func (r LoadRV) String() string {
	if r.Field == "" {
		return "*" + r.P.Name
	}
	return r.P.Name + "->" + r.Field
}
func (r LocalLoadRV) String() string {
	if r.Idx != nil {
		return fmt.Sprintf("%s[%s]", r.Base.Name, r.Idx)
	}
	return r.Base.Name + "." + r.Field
}
func (r AddrRV) String() string {
	if r.Off != 0 {
		return fmt.Sprintf("&%s+%d", r.X.Name, r.Off)
	}
	return "&" + r.X.Name
}
func (r FieldAddrRV) String() string { return "&" + r.P.Name + "->" + r.Field }

// ---------------------------------------------------------------- lvalues ---

// Lvalue is the destination of an assignment.
type Lvalue interface {
	lvalue()
	String() string
}

// VarLV assigns to a scalar variable.
type VarLV struct{ V *Var }

// StoreLV writes through a pointer: p->Field = ... (or *p when Field is "").
// This is the (potentially) remote write of a basic statement.
type StoreLV struct {
	P     *Var
	Field string
	Off   int
}

// LocalStoreLV writes a field/element of a struct- or array-valued frame
// variable. Always local.
type LocalStoreLV struct {
	Base  *Var
	Field string
	Off   int
	Idx   Atom
	Scale int
}

func (VarLV) lvalue()        {}
func (StoreLV) lvalue()      {}
func (LocalStoreLV) lvalue() {}

func (l VarLV) String() string { return l.V.Name }
func (l StoreLV) String() string {
	if l.Field == "" {
		return "*" + l.P.Name
	}
	return l.P.Name + "->" + l.Field
}
func (l LocalStoreLV) String() string {
	if l.Idx != nil {
		return fmt.Sprintf("%s[%s]", l.Base.Name, l.Idx)
	}
	return l.Base.Name + "." + l.Field
}

// ------------------------------------------------------------- statements ---

// Stmt is a SIMPLE statement: a basic statement or a structured compound.
type Stmt interface{ stmt() }

// BasicKind discriminates basic statements.
type BasicKind int

// Basic statement kinds.
const (
	KAssign   BasicKind = iota // Lhs = Rhs (at most one of Lhs/Rhs indirect)
	KCall                      // [Dst =] Fun(Args...) [@placement]
	KBuiltin                   // [Dst =] builtin(Args...)
	KAlloc                     // Dst = alloc(Struct) [on Node]
	KReturn                    // return [Val]
	KBlkCopy                   // block copy between struct storage (see fields)
	KGetF                      // Dst = GET p->Field   (split-phase remote read)
	KPutF                      // PUT p->Field = Val   (split-phase remote write)
	KBlkRead                   // BLKMOV *p -> &Local  (blocked remote read)
	KBlkWrite                  // BLKMOV &Local -> *p  (blocked remote write)
)

// Builtin mirrors sema.Builtin without importing it (avoids a cycle: sema is
// used by lowering, which imports both).
type Builtin int

// Placement mirrors the source-level call placement after lowering.
type Placement struct {
	Kind earthc.PlaceKind
	Arg  Atom // pointer for OwnerOf, node id for On
}

// Basic is a basic statement. Fields are used according to Kind; unused
// fields are nil/zero. Label is the unique statement label (the paper's Si).
type Basic struct {
	Label int
	Kind  BasicKind

	// KAssign
	Lhs Lvalue
	Rhs Rvalue

	// KCall / KBuiltin
	Dst     *Var // optional result
	Fun     string
	BFun    Builtin
	Args    []Atom
	StrArg  string // print_str literal
	Place   *Placement
	ArgVars []*Var // extra: &var arguments passed by reference (shared intrinsics)

	// KAlloc
	StructName string
	AllocSize  int
	Node       Atom // nil = current node

	// KBlkCopy / KBlkRead / KBlkWrite / KGetF / KPutF
	P     *Var   // remote pointer
	P2    *Var   // second pointer for ptr-to-ptr copies
	Local *Var   // struct-valued frame variable
	Field string // field for KGetF / KPutF
	Off   int    // source word offset
	Off2  int    // destination word offset (block copies)
	Size  int    // words moved by block operations
	Val   Atom   // stored value for KPutF
}

// Seq is a statement sequence.
type Seq struct{ Stmts []Stmt }

// Cond is a simplified condition: X Op Y over atoms (Op is a comparison),
// or a bare truth test when Op == -1 (X != 0).
type Cond struct {
	Op   earthc.BinOp // comparison, or TruthTest
	X, Y Atom
}

// TruthTest marks a bare "X is nonzero" condition.
const TruthTest earthc.BinOp = -2

func (c Cond) String() string {
	if c.Op == TruthTest {
		return c.X.String()
	}
	return c.X.String() + " " + c.Op.String() + " " + c.Y.String()
}

// If is a two-way conditional.
type If struct {
	Cond Cond
	Then *Seq
	Else *Seq // may be empty, never nil
	Site int  // stable profiling site ID (see AssignSites); 0 = unassigned
}

// SwitchCase is one alternative of a Switch.
type SwitchCase struct {
	Vals []int64 // nil for default
	Body *Seq
}

// Switch is a multiway conditional on an integer atom. Cases do not fall
// through.
type Switch struct {
	Tag   Atom
	Cases []*SwitchCase
	Site  int // stable profiling site ID
}

// While is a top-tested loop. Eval re-computes the condition's inputs; it is
// executed before each test (including the first). Loops whose condition is
// a simple variable test have an empty Eval.
type While struct {
	Eval *Seq
	Cond Cond
	Body *Seq
	Site int // stable profiling site ID
}

// Do is a bottom-tested loop; Eval recomputes the condition inputs after
// the body, before the test.
type Do struct {
	Body *Seq
	Eval *Seq
	Cond Cond
	Site int // stable profiling site ID
}

// Forall is a parallel loop: Body instances may run concurrently; the
// induction (Eval/Cond/Step) runs sequentially on the spawning node, and the
// construct joins all iterations before completing.
type Forall struct {
	Eval *Seq
	Cond Cond
	Body *Seq
	Step *Seq
	Site int // stable profiling site ID
}

// Par is a parallel statement sequence {^ ... ^}: arms run concurrently and
// join at the end.
type Par struct{ Arms []*Seq }

func (*Basic) stmt()  {}
func (*Seq) stmt()    {}
func (*If) stmt()     {}
func (*Switch) stmt() {}
func (*While) stmt()  {}
func (*Do) stmt()     {}
func (*Forall) stmt() {}
func (*Par) stmt()    {}

// ---------------------------------------------------------------- program ---

// Func is a function in SIMPLE form.
type Func struct {
	Name   string
	Ret    earthc.Type
	Params []*Var
	Locals []*Var // all non-param variables, including temporaries
	Body   *Seq
	Basics []*Basic // index = label
}

// VarByName finds a parameter or local by name, or nil.
func (f *Func) VarByName(name string) *Var {
	for _, v := range f.Params {
		if v.Name == name {
			return v
		}
	}
	for _, v := range f.Locals {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// NewBasic creates a labeled basic statement registered with the function.
func (f *Func) NewBasic(k BasicKind) *Basic {
	b := &Basic{Label: len(f.Basics), Kind: k}
	f.Basics = append(f.Basics, b)
	return b
}

// AddLocal registers a new local/temporary variable.
func (f *Func) AddLocal(v *Var) *Var {
	f.Locals = append(f.Locals, v)
	return v
}

// Program is a whole program in SIMPLE form.
type Program struct {
	Funcs   []*Func
	Globals []*Var
	// GlobalInit holds constant initial values (raw 64-bit words) for
	// globals that declare one.
	GlobalInit map[*Var]int64
	// Structs carries word layouts for the interpreter and block sizing:
	// name -> (size, field offsets).
	Structs map[string]*StructLayout
}

// StructLayout is the flattened word layout of a struct.
type StructLayout struct {
	Name    string
	Size    int
	Offsets map[string]int
	Fields  []string // declaration order
	// FieldSizes holds each top-level field's size in words.
	FieldSizes map[string]int
}

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
