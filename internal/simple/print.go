package simple

import (
	"fmt"
	"strings"

	"repro/internal/earthc"
)

// PrintOptions controls SIMPLE pretty-printing.
type PrintOptions struct {
	Labels bool // prefix basic statements with their Si labels
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(FuncString(f, PrintOptions{}))
	}
	return b.String()
}

// FuncString renders one function.
func FuncString(f *Func, opt PrintOptions) string {
	var b strings.Builder
	params := make([]string, len(f.Params))
	for i, v := range f.Params {
		params[i] = v.Type.String() + " " + v.Name
	}
	fmt.Fprintf(&b, "%s %s(%s)\n{\n", f.Ret, f.Name, strings.Join(params, ", "))
	pr := &printer{opt: opt}
	pr.seq(&b, f.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

// StmtText renders one statement (no trailing newline trimming).
func StmtText(s Stmt, opt PrintOptions) string {
	var b strings.Builder
	pr := &printer{opt: opt}
	pr.stmt(&b, s, 0)
	return b.String()
}

type printer struct{ opt PrintOptions }

func (p *printer) indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("    ")
	}
}

func (p *printer) seq(b *strings.Builder, s *Seq, depth int) {
	for _, st := range s.Stmts {
		p.stmt(b, st, depth)
	}
}

func (p *printer) stmt(b *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *Basic:
		p.indent(b, depth)
		if p.opt.Labels {
			fmt.Fprintf(b, "S%d: ", st.Label)
		}
		b.WriteString(BasicText(st))
		b.WriteString("\n")
	case *Seq:
		p.seq(b, st, depth)
	case *If:
		p.indent(b, depth)
		fmt.Fprintf(b, "if (%s) {\n", st.Cond)
		p.seq(b, st.Then, depth+1)
		if st.Else != nil && len(st.Else.Stmts) > 0 {
			p.indent(b, depth)
			b.WriteString("} else {\n")
			p.seq(b, st.Else, depth+1)
		}
		p.indent(b, depth)
		b.WriteString("}\n")
	case *Switch:
		p.indent(b, depth)
		fmt.Fprintf(b, "switch (%s) {\n", st.Tag)
		for _, cc := range st.Cases {
			p.indent(b, depth)
			if cc.Vals == nil {
				b.WriteString("default:\n")
			} else {
				vals := make([]string, len(cc.Vals))
				for i, v := range cc.Vals {
					vals[i] = fmt.Sprintf("%d", v)
				}
				fmt.Fprintf(b, "case %s:\n", strings.Join(vals, ", "))
			}
			p.seq(b, cc.Body, depth+1)
		}
		p.indent(b, depth)
		b.WriteString("}\n")
	case *While:
		if len(st.Eval.Stmts) > 0 {
			p.indent(b, depth)
			b.WriteString("/* cond eval */\n")
			p.seq(b, st.Eval, depth)
		}
		p.indent(b, depth)
		fmt.Fprintf(b, "while (%s) {\n", st.Cond)
		p.seq(b, st.Body, depth+1)
		p.indent(b, depth)
		b.WriteString("}\n")
	case *Do:
		p.indent(b, depth)
		b.WriteString("do {\n")
		p.seq(b, st.Body, depth+1)
		if len(st.Eval.Stmts) > 0 {
			p.seq(b, st.Eval, depth+1)
		}
		p.indent(b, depth)
		fmt.Fprintf(b, "} while (%s);\n", st.Cond)
	case *Forall:
		p.indent(b, depth)
		fmt.Fprintf(b, "forall (%s) {\n", st.Cond)
		p.seq(b, st.Body, depth+1)
		if len(st.Step.Stmts) > 0 {
			p.indent(b, depth)
			b.WriteString("} step {\n")
			p.seq(b, st.Step, depth+1)
		}
		p.indent(b, depth)
		b.WriteString("}\n")
	case *Par:
		p.indent(b, depth)
		b.WriteString("{^\n")
		for i, arm := range st.Arms {
			if i > 0 {
				p.indent(b, depth)
				b.WriteString("//\n")
			}
			p.seq(b, arm, depth+1)
		}
		p.indent(b, depth)
		b.WriteString("^}\n")
	default:
		p.indent(b, depth)
		fmt.Fprintf(b, "/* ?stmt %T */\n", s)
	}
}

// BasicText renders a basic statement without label or indentation.
func BasicText(st *Basic) string {
	switch st.Kind {
	case KAssign:
		return fmt.Sprintf("%s = %s;", st.Lhs, st.Rhs)
	case KCall:
		call := st.Fun + "(" + atomList(st.Args) + ")"
		if st.Place != nil {
			switch st.Place.Kind {
			case earthc.PlaceOwnerOf:
				call += "@OWNER_OF(" + st.Place.Arg.String() + ")"
			case earthc.PlaceOn:
				call += "@ON(" + st.Place.Arg.String() + ")"
			case earthc.PlaceHome:
				call += "@HOME"
			}
		}
		if st.Dst != nil {
			return fmt.Sprintf("%s = %s;", st.Dst, call)
		}
		return call + ";"
	case KBuiltin:
		args := atomList(st.Args)
		if st.StrArg != "" {
			args = fmt.Sprintf("%q", st.StrArg)
		}
		for _, v := range st.ArgVars {
			if args != "" {
				args = "&" + v.Name + ", " + args
			} else {
				args = "&" + v.Name
			}
		}
		call := st.Fun + "(" + args + ")"
		if st.Dst != nil {
			return fmt.Sprintf("%s = %s;", st.Dst, call)
		}
		return call + ";"
	case KAlloc:
		if st.Node != nil {
			return fmt.Sprintf("%s = alloc_on(%s, %s);", st.Dst, st.StructName, st.Node)
		}
		return fmt.Sprintf("%s = alloc(%s);", st.Dst, st.StructName)
	case KReturn:
		if st.Val != nil {
			return fmt.Sprintf("return(%s);", st.Val)
		}
		return "return;"
	case KBlkCopy:
		src := "?"
		dst := "?"
		if st.P != nil {
			src = "*" + st.P.Name
		} else if st.Local != nil {
			src = st.Local.Name
		}
		if st.P2 != nil {
			dst = "*" + st.P2.Name
		} else if st.Dst != nil {
			dst = st.Dst.Name
		}
		return fmt.Sprintf("%s = %s; /* struct copy, %d words */", dst, src, st.Size)
	case KGetF:
		return fmt.Sprintf("%s = %s->%s; /* get_sync */", st.Dst, st.P, st.Field)
	case KPutF:
		if st.Val == nil {
			return fmt.Sprintf("%s->%s = %s.%s; /* put_sync */", st.P, st.Field, st.Local, st.Field)
		}
		return fmt.Sprintf("%s->%s = %s; /* put_sync */", st.P, st.Field, st.Val)
	case KBlkRead:
		return fmt.Sprintf("blkmov(%s, &%s, %d); /* read */", st.P, st.Local, st.Size)
	case KBlkWrite:
		return fmt.Sprintf("blkmov(&%s, %s, %d); /* write */", st.Local, st.P, st.Size)
	}
	return fmt.Sprintf("/* ?basic kind=%d */", st.Kind)
}

func atomList(as []Atom) string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.String()
	}
	return strings.Join(out, ", ")
}
