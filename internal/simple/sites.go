package simple

import "fmt"

// AssignSites gives every compound statement a stable site ID used as the
// profiling key (see internal/profile): per function, compounds are
// numbered 1..n in WalkStmts order (parents before children, children in
// execution order). Lowering is deterministic, so the instrumented
// (unoptimized) compile and the profile-guided optimizing compile of the
// same restructured AST assign identical IDs — which is what lets a
// profile collected on the former steer the latter. Basic statements need
// no extra ID: their lowering-assigned Label already is one.
//
// Par sequences get no site: their arms run concurrently and the placement
// analysis applies no frequency scaling to them.
func AssignSites(p *Program) {
	for _, f := range p.Funcs {
		n := 0
		WalkStmts(f.Body, func(s Stmt) {
			switch st := s.(type) {
			case *If:
				n++
				st.Site = n
			case *Switch:
				n++
				st.Site = n
			case *While:
				n++
				st.Site = n
			case *Do:
				n++
				st.Site = n
			case *Forall:
				n++
				st.Site = n
			}
		})
	}
}

// SiteOf returns a compound statement's site ID (0 when unassigned or the
// statement kind carries none).
func SiteOf(s Stmt) int {
	switch st := s.(type) {
	case *If:
		return st.Site
	case *Switch:
		return st.Site
	case *While:
		return st.Site
	case *Do:
		return st.Site
	case *Forall:
		return st.Site
	}
	return 0
}

// CompoundSiteKey is the profile key of a compound statement site; "" when
// the site is unassigned.
func CompoundSiteKey(fn string, site int) string {
	if site == 0 {
		return ""
	}
	return fmt.Sprintf("%s:C%d", fn, site)
}

// BasicSiteKey is the profile key of a basic statement (keyed by its Si
// label).
func BasicSiteKey(fn string, label int) string {
	return fmt.Sprintf("%s:S%d", fn, label)
}
