package simple

// Subseqs returns the direct child sequences of a statement, in execution
// order. Basic statements have none.
func Subseqs(s Stmt) []*Seq {
	switch st := s.(type) {
	case *Seq:
		return []*Seq{st}
	case *If:
		return []*Seq{st.Then, st.Else}
	case *Switch:
		out := make([]*Seq, len(st.Cases))
		for i, cc := range st.Cases {
			out[i] = cc.Body
		}
		return out
	case *While:
		return []*Seq{st.Eval, st.Body}
	case *Do:
		return []*Seq{st.Body, st.Eval}
	case *Forall:
		return []*Seq{st.Eval, st.Body, st.Step}
	case *Par:
		return st.Arms
	}
	return nil
}

// WalkBasics calls fn for every basic statement in the subtree, in source
// order.
func WalkBasics(s Stmt, fn func(*Basic)) {
	if b, ok := s.(*Basic); ok {
		fn(b)
		return
	}
	for _, seq := range Subseqs(s) {
		for _, c := range seq.Stmts {
			WalkBasics(c, fn)
		}
	}
}

// WalkStmts calls fn for every statement (basic and compound) in the
// subtree, parents before children.
func WalkStmts(s Stmt, fn func(Stmt)) {
	fn(s)
	for _, seq := range Subseqs(s) {
		for _, c := range seq.Stmts {
			WalkStmts(c, fn)
		}
	}
}

// CondAtoms returns the atoms read by a condition.
func (c Cond) Atoms() []Atom {
	if c.Op == TruthTest {
		return []Atom{c.X}
	}
	return []Atom{c.X, c.Y}
}

// RvalueAtoms returns the atoms read by an rvalue (not counting the pointer
// of a load, which callers handle separately).
func RvalueAtoms(r Rvalue) []Atom {
	switch rv := r.(type) {
	case AtomRV:
		return []Atom{rv.A}
	case UnaryRV:
		return []Atom{rv.X}
	case BinaryRV:
		return []Atom{rv.X, rv.Y}
	case LocalLoadRV:
		if rv.Idx != nil {
			return []Atom{rv.Idx}
		}
	}
	return nil
}
