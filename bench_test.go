// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation (§5) as testing.B benchmarks:
//
//	BenchmarkTable1/...  — communication microbenchmarks (Table I)
//	BenchmarkFig10/...   — dynamic communication counts (Figure 10)
//	BenchmarkTable3/...  — simple vs optimized execution times (Table III)
//
// Each benchmark iteration runs a full compile-and-simulate cycle; the
// interesting quantities (simulated nanoseconds, operation counts,
// improvement percentages) are attached as custom metrics, so
// `go test -bench=. -benchmem` prints both host cost and the reproduced
// numbers.
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/olden"
)

// quickParams keeps each simulated run in the tens of milliseconds.
func quickParams(bm *olden.Benchmark) olden.Params { return olden.QuickParams(bm) }

// BenchmarkTable1 regenerates the Table I microbenchmarks once per
// iteration and reports the measured per-operation costs.
func BenchmarkTable1(b *testing.B) {
	var res *harness.Table1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.MeasureTable1()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(float64(row.Sequential), row.Operation[:4]+"_seq_ns")
		b.ReportMetric(float64(row.Pipelined), row.Operation[:4]+"_pipe_ns")
	}
}

// BenchmarkFig10 runs each Olden benchmark in simple and optimized form on
// a 4-node machine, reporting the communication-count reduction.
func BenchmarkFig10(b *testing.B) {
	for _, bm := range olden.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			// Prime the harness's shared compile cache so allocs/op measures
			// the warm measure-and-simulate cycle regardless of b.N: without
			// this the cold compile amortizes across iterations and the
			// metric depends on benchtime, which the benchdiff gate (1s
			// artifact vs 50ms quick rerun) cannot tolerate.
			if _, err := harness.MeasureFig10Single(bm, quickParams(bm), 4); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var row harness.Fig10Row
			for i := 0; i < b.N; i++ {
				res, err := harness.MeasureFig10Single(bm, quickParams(bm), 4)
				if err != nil {
					b.Fatal(err)
				}
				row = *res
			}
			b.ReportMetric(float64(row.TotalSimple), "simple_ops")
			b.ReportMetric(float64(row.OptTotal()), "opt_ops")
			b.ReportMetric(row.Normalized(), "opt_pct_of_simple")
		})
	}
}

// BenchmarkTable3 runs each Olden benchmark at 1 and 4 simulated nodes,
// reporting simulated times and the optimization improvement.
func BenchmarkTable3(b *testing.B) {
	for _, bm := range olden.All() {
		bm := bm
		for _, nodes := range []int{1, 4} {
			nodes := nodes
			b.Run(bm.Name+"/nodes="+itoa(nodes), func(b *testing.B) {
				var simpleNs, optNs int64
				for i := 0; i < b.N; i++ {
					s, o, err := harness.RunPair(bm, quickParams(bm), nodes)
					if err != nil {
						b.Fatal(err)
					}
					simpleNs, optNs = s.Time, o.Time
				}
				b.ReportMetric(float64(simpleNs)/1e6, "simple_sim_ms")
				b.ReportMetric(float64(optNs)/1e6, "opt_sim_ms")
				b.ReportMetric(100*(1-float64(optNs)/float64(simpleNs)), "improvement_pct")
			})
		}
	}
}

// BenchmarkCompile measures the compiler pipeline itself (parse through
// communication selection) on the largest benchmark source.
func BenchmarkCompile(b *testing.B) {
	bm := olden.ByName("health")
	src := bm.Source(bm.DefaultParams)
	b.ReportAllocs()
	p := core.NewPipeline(core.Options{Optimize: true})
	for i := 0; i < b.N; i++ {
		if _, err := p.Compile("health.ec", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileWarm measures recompiling the unchanged source against a
// warm compile cache: the unit LRU serves the same immutable unit, so the
// warm cost is hashing the source plus one lookup. Paired with
// BenchmarkCompile in BENCH_pr7.json, it pins the cache contract — warm
// recompile under 10% of cold — in the benchdiff gate.
func BenchmarkCompileWarm(b *testing.B) {
	bm := olden.ByName("health")
	src := bm.Source(bm.DefaultParams)
	p := core.NewPipeline(core.Options{Optimize: true, Cache: cache.New(0, "")})
	req := core.CompileRequest{Name: "health.ec", Source: src}
	if _, err := p.Do(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Hit {
			b.Fatal("warm compile missed the cache")
		}
	}
}

// BenchmarkSimulator measures raw simulator throughput (instructions per
// host second) on the power benchmark.
func BenchmarkSimulator(b *testing.B) {
	bm := olden.ByName("power")
	src := bm.Source(quickParams(bm))
	p := core.NewPipeline(core.Options{Optimize: true})
	u, err := p.Compile("power.ec", src)
	if err != nil {
		b.Fatal(err)
	}
	// Exclude one-shot setup from the measurement so allocs/op is
	// independent of b.N (the quick perf gate runs at -benchtime 50ms, where
	// the compile's ~29k allocations and the first run's threaded-code
	// generation would otherwise dominate): prime the per-Unit code cache
	// with one run, then reset the counters.
	if _, err := p.Run(u, core.RunConfig{Nodes: 4}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		res, err := p.Run(u, core.RunConfig{Nodes: 4})
		if err != nil {
			b.Fatal(err)
		}
		instr = res.Counts.Instructions
	}
	b.ReportMetric(float64(instr), "guest_instructions")
}

// BenchmarkSimNodes is the sharded-event-loop scalability sweep: the halo
// ring exchange (one cell per node, nearest-neighbor traffic only) at
// rising machine sizes, run both on the classic sequential loop (seq) and
// sharded with SimWorkers=GOMAXPROCS (par). Both modes produce bit-identical
// results — the equivalence matrix in internal/earthsim pins that — so the
// sweep isolates pure event-loop cost: wall time per run plus events/sec
// (events is deterministic and Exact-gated; events_sec is the throughput
// metric the BENCH_pr8.json gate tracks).
func BenchmarkSimNodes(b *testing.B) {
	bm := olden.Halo()
	src := bm.Source(bm.DefaultParams)
	p := core.NewPipeline(core.Options{Optimize: true})
	u, err := p.Compile("halo.ec", src)
	if err != nil {
		b.Fatal(err)
	}
	for _, nodes := range []int{4, 64, 256, 1024} {
		for _, mode := range []struct {
			name    string
			workers int
		}{{"seq", 0}, {"par", runtime.GOMAXPROCS(0)}} {
			nodes, mode := nodes, mode
			b.Run("nodes="+itoa(nodes)+"/"+mode.name, func(b *testing.B) {
				rc := core.RunConfig{Nodes: nodes, SimWorkers: mode.workers}
				// Prime the per-Unit threaded-code cache so allocs/op measures
				// the simulator, not one-shot code generation.
				if _, err := p.Run(u, rc); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var events int64
				for i := 0; i < b.N; i++ {
					res, err := p.Run(u, rc)
					if err != nil {
						b.Fatal(err)
					}
					events = res.Events
				}
				b.ReportMetric(float64(events), "events")
				b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events_sec")
			})
		}
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}
