// The paper's Figure 7/8 worked example: find the last point within epsilon
// of *t, then compute coordinate differences.
// Try:  earthcc -O -dump=placement testdata/listsearch.ec
struct Point {
	double x;
	double y;
	struct Point *next;
};

double f(double ax, double ay, double bx, double by) {
	double dx;
	double dy;
	dx = ax - bx;
	dy = ay - by;
	return sqrt(dx * dx + dy * dy);
}

double example(Point *head, Point *t, double epsilon) {
	Point *p;
	Point *close;
	double ax; double ay; double bx; double by;
	double cx; double tx; double diffx;
	double cy; double ty; double diffy;
	double dist;
	close = NULL;
	p = head;
	while (p != NULL) {
		ax = p->x;
		ay = p->y;
		bx = t->x;
		by = t->y;
		dist = f(ax, ay, bx, by);
		if (dist < epsilon) close = p;
		p = p->next;
	}
	cx = close->x;
	tx = t->x;
	diffx = cx - tx;
	cy = close->y;
	ty = t->y;
	diffy = cy - ty;
	return diffx + diffy;
}

int main() {
	Point *head;
	Point *t;
	Point *p;
	int i;
	double d;
	head = NULL;
	for (i = 0; i < 32; i++) {
		p = alloc_on(Point, i % num_nodes());
		p->x = dbl(i % 11);
		p->y = dbl(i % 7);
		p->next = head;
		head = p;
	}
	t = alloc(Point);
	t->x = 5.0;
	t->y = 3.0;
	d = example(head, t, 3.5);
	print_double(d);
	return trunc(d);
}
