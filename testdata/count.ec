// The paper's Figure 1: counting occurrences of a node in a list, in both
// the forall/shared-counter style and the recursive parallel style.
struct Node {
	int value;
	struct Node *next;
};

int equal_node(Node local *p, Node *q) {
	return p->value == q->value;
}

int count(Node *head, Node *x) {
	shared int count;
	Node *p;
	writeto(&count, 0);
	forall (p = head; p != NULL; p = p->next) {
		if (equal_node(p, x)@OWNER_OF(p) == 1) addto(&count, 1);
	}
	return valueof(&count);
}

int count_rec(Node *head, Node *x) {
	int c1;
	int c2;
	Node *nxt;
	if (head == NULL) return 0;
	nxt = head->next;
	{^
		c1 = equal_node(head, x)@OWNER_OF(head);
		c2 = count_rec(nxt, x);
	^}
	return c1 + c2;
}

int main() {
	Node *head;
	Node *p;
	Node *x;
	int i;
	int a;
	int b;
	head = NULL;
	for (i = 0; i < 24; i++) {
		p = alloc_on(Node, i % num_nodes());
		p->value = i % 5;
		p->next = head;
		head = p;
	}
	x = alloc(Node);
	x->value = 3;
	x->next = NULL;
	a = count(head, x);
	b = count_rec(head, x);
	print_int(a);
	print_int(b);
	return a * 100 + b;
}
