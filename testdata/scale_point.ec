// The paper's Figure 4: reads collected early, writes delayed late.
// Try:  earthcc -O -labels testdata/scale_point.ec
struct Point {
	double x;
	double y;
};

double scale(double v, double k) {
	return v * k;
}

void scale_point(Point *p, double k) {
	p->x = scale(p->x, k);
	p->y = scale(p->y, k);
}

int main() {
	Point *p;
	p = alloc_on(Point, num_nodes() - 1);
	p->x = 1.5;
	p->y = 2.5;
	scale_point(p, 4.0);
	print_double(p->x);
	print_double(p->y);
	return trunc(p->x + p->y);
}
