// The paper's Figure 3 motivating example: with no locality information the
// compiler must assume each indirect reference through p is remote.
// Try:  earthcc -O -labels testdata/distance.ec
//       earthrun -compare -nodes 2 testdata/distance.ec
struct Point {
	double x;
	double y;
};

double distance(Point *p) {
	double dist_p;
	dist_p = sqrt((p->x * p->x) + (p->y * p->y));
	return dist_p;
}

int main() {
	Point *p;
	double d;
	p = alloc_on(Point, num_nodes() - 1);
	p->x = 3.0;
	p->y = 4.0;
	d = distance(p);
	print_double(d);
	return trunc(d);
}
