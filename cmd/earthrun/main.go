// Command earthrun compiles an EARTH-C program and executes it on the
// simulated EARTH-MANNA machine.
//
// Usage:
//
//	earthrun [flags] file.ec
//
//	-nodes N          machine size (default 1)
//	-O                enable communication optimization
//	-seq              sequential baseline build (serialized, direct memory)
//	-stats            print simulated time and communication counters
//	-compare          run both simple and optimized builds and compare
//	-profile out      instrument the run and write (or merge into) the
//	                  profile artifact at out
//	-profile-use in   optimize using a previously collected profile
//	                  (implies -O)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/profile"
)

func main() {
	nodes := flag.Int("nodes", 1, "number of simulated nodes")
	optimize := flag.Bool("O", false, "enable communication optimization")
	seq := flag.Bool("seq", false, "sequential baseline build")
	stats := flag.Bool("stats", false, "print time and counters")
	compare := flag.Bool("compare", false, "run simple and optimized, compare")
	profOut := flag.String("profile", "", "instrument the run and write/merge the profile here")
	profUse := flag.String("profile-use", "", "optimize using a previously collected profile (implies -O)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: earthrun [flags] file.ec")
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	srcBytes, err := os.ReadFile(name)
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	var prof *profile.Data
	if *profUse != "" {
		prof, err = profile.ReadFile(*profUse)
		if err != nil {
			fatal(err)
		}
		*optimize = true
	}

	if *compare {
		simple, err := run(name, src, runOpts{nodes: *nodes, seq: *seq})
		if err != nil {
			fatal(err)
		}
		opt, err := run(name, src, runOpts{optimize: true, nodes: *nodes, seq: *seq, prof: prof})
		if err != nil {
			fatal(err)
		}
		if simple.out != opt.out {
			fatal(fmt.Errorf("outputs differ!\nsimple: %q\noptimized: %q", simple.out, opt.out))
		}
		fmt.Print(simple.out)
		fmt.Printf("simple:    %12d ns   %s\n", simple.time, simple.counts)
		fmt.Printf("optimized: %12d ns   %s\n", opt.time, opt.counts)
		fmt.Printf("improvement: %.2f%%\n", 100*(1-float64(opt.time)/float64(simple.time)))
		return
	}

	r, err := run(name, src, runOpts{
		optimize: *optimize, nodes: *nodes, seq: *seq,
		prof: prof, instrument: *profOut != "",
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(r.out)
	if *profOut != "" {
		saved, err := saveProfile(*profOut, r.prof)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "earthrun: profile written to %s (%d run(s) accumulated)\n",
			*profOut, saved.Runs)
	}
	if *stats {
		fmt.Printf("time: %d ns (%.3f ms) on %d node(s)\n", r.time, float64(r.time)/1e6, *nodes)
		fmt.Printf("comm: %s\n", r.counts)
	}
}

// saveProfile writes p to path, merging into an existing compatible profile
// first so repeated -profile runs accumulate (runs sum). It returns the
// profile actually written.
func saveProfile(path string, p *profile.Data) (*profile.Data, error) {
	if prev, err := profile.ReadFile(path); err == nil {
		if mergeErr := prev.Merge(p); mergeErr != nil {
			fmt.Fprintf(os.Stderr, "earthrun: warning: not merging into %s: %v\n", path, mergeErr)
		} else {
			p = prev
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return p, p.WriteFile(path)
}

type runOpts struct {
	optimize   bool
	nodes      int
	seq        bool
	prof       *profile.Data // measured frequencies for the optimizer
	instrument bool          // collect a profile during the run
}

type runResult struct {
	out    string
	time   int64
	counts fmt.Stringer
	prof   *profile.Data
}

func run(name, src string, ro runOpts) (*runResult, error) {
	u, err := core.Compile(name, src, core.Options{Optimize: ro.optimize, Profile: ro.prof})
	if err != nil {
		return nil, err
	}
	for _, w := range u.Warnings {
		fmt.Fprintln(os.Stderr, "earthrun: warning:", w)
	}
	res, err := u.Run(core.RunConfig{Nodes: ro.nodes, Sequential: ro.seq, Profile: ro.instrument})
	if err != nil {
		return nil, err
	}
	return &runResult{out: res.Output, time: res.Time, counts: res.Counts, prof: res.Profile}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "earthrun:", err)
	os.Exit(1)
}
