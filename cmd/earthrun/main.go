// Command earthrun compiles an EARTH-C program and executes it on the
// simulated EARTH-MANNA machine.
//
// Usage:
//
//	earthrun [flags] file.ec
//
//	-nodes N    machine size (default 1)
//	-O          enable communication optimization
//	-seq        sequential baseline build (serialized, direct memory)
//	-stats      print simulated time and communication counters
//	-compare    run both simple and optimized builds and compare
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	nodes := flag.Int("nodes", 1, "number of simulated nodes")
	optimize := flag.Bool("O", false, "enable communication optimization")
	seq := flag.Bool("seq", false, "sequential baseline build")
	stats := flag.Bool("stats", false, "print time and counters")
	compare := flag.Bool("compare", false, "run simple and optimized, compare")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: earthrun [flags] file.ec")
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	srcBytes, err := os.ReadFile(name)
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	if *compare {
		simple, err := run(name, src, false, *nodes, *seq)
		if err != nil {
			fatal(err)
		}
		opt, err := run(name, src, true, *nodes, *seq)
		if err != nil {
			fatal(err)
		}
		if simple.out != opt.out {
			fatal(fmt.Errorf("outputs differ!\nsimple: %q\noptimized: %q", simple.out, opt.out))
		}
		fmt.Print(simple.out)
		fmt.Printf("simple:    %12d ns   %s\n", simple.time, simple.counts)
		fmt.Printf("optimized: %12d ns   %s\n", opt.time, opt.counts)
		fmt.Printf("improvement: %.2f%%\n", 100*(1-float64(opt.time)/float64(simple.time)))
		return
	}

	r, err := run(name, src, *optimize, *nodes, *seq)
	if err != nil {
		fatal(err)
	}
	fmt.Print(r.out)
	if *stats {
		fmt.Printf("time: %d ns (%.3f ms) on %d node(s)\n", r.time, float64(r.time)/1e6, *nodes)
		fmt.Printf("comm: %s\n", r.counts)
	}
}

type runResult struct {
	out    string
	time   int64
	counts fmt.Stringer
}

func run(name, src string, optimize bool, nodes int, seq bool) (*runResult, error) {
	u, err := core.Compile(name, src, core.Options{Optimize: optimize})
	if err != nil {
		return nil, err
	}
	res, err := u.Run(core.RunConfig{Nodes: nodes, Sequential: seq})
	if err != nil {
		return nil, err
	}
	return &runResult{out: res.Output, time: res.Time, counts: res.Counts}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "earthrun:", err)
	os.Exit(1)
}
