// Command earthrun compiles an EARTH-C program and executes it on the
// simulated EARTH-MANNA machine.
//
// Usage:
//
//	earthrun [flags] file.ec
//
//	-nodes N          machine size (default 1)
//	-O                enable communication optimization
//	-seq              sequential baseline build (serialized, direct memory)
//	-stats            print simulated time and communication counters
//	-compare          run both simple and optimized builds and compare
//	-profile out      instrument the run and write (or merge into) the
//	                  profile artifact at out
//	-profile-use in   optimize using a previously collected profile
//	                  (implies -O)
//	-trace out.json   record per-message/per-unit events and write a Chrome
//	                  trace_event file (open in chrome://tracing or Perfetto)
//	-trace-summary    print a text summary of the recorded events (latency
//	                  histograms, per-site traffic, utilization); implies
//	                  recording even without -trace
//	-cost spec        override simulator cost parameters, e.g.
//	                  "NetLatency=2500,SUService=800"
//	-faults spec      inject deterministic transport faults and run the
//	                  reliable-messaging protocol, e.g.
//	                  "drop=0.01,dup=0.005,delay=3" (see -faults keys below)
//	-fault-seed N     PRNG seed for fault injection (default 1); the same
//	                  seed and spec reproduce the run exactly
//	-fuel N           abort after N simulated EU instructions instead of
//	                  hanging on a runaway program (0 = unlimited)
//	-deadline d       abort after d of host wall-clock time, e.g. "30s"
//	-j N              compile with N analysis workers (0 = all CPUs); the
//	                  compiled code and the simulated result are identical
//	                  for every worker count
//	-http addr        serve live telemetry on addr (e.g. ":6060") while the
//	                  run is in flight: /metrics (Prometheus, including
//	                  process-level goroutine/GC/heap gauges), /metrics.json,
//	                  /series.json (deterministic simulator time series),
//	                  /healthz, /trace/summary and /trace.json (when tracing
//	                  is on), and /debug/pprof/. The server lives until the
//	                  process exits; SIGINT/SIGTERM drains it gracefully
//	                  (in-flight scrapes finish) before the process stops.
//
// Fault spec keys: drop, dup, stall (probabilities in [0,1)); delay (max
// extra hops, uniform); stallns, timeout (ns); retries; seed.
//
// With -compare, tracing, fault injection and -http apply to the optimized
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/earthsim"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 1, "number of simulated nodes")
	optimize := flag.Bool("O", false, "enable communication optimization")
	seq := flag.Bool("seq", false, "sequential baseline build")
	stats := flag.Bool("stats", false, "print time and counters")
	compare := flag.Bool("compare", false, "run simple and optimized, compare")
	profOut := flag.String("profile", "", "instrument the run and write/merge the profile here")
	profUse := flag.String("profile-use", "", "optimize using a previously collected profile (implies -O)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file of the run here")
	traceSum := flag.Bool("trace-summary", false, "print a text summary of recorded events")
	costSpec := flag.String("cost", "", "cost-model overrides, e.g. \"NetLatency=2500,SUService=800\"")
	faultSpec := flag.String("faults", "", "fault-injection spec, e.g. \"drop=0.01,dup=0.005,delay=3\"")
	faultSeed := flag.Uint64("fault-seed", 1, "PRNG seed for fault injection")
	fuel := flag.Int64("fuel", 0, "abort after N simulated EU instructions (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "abort after this much host wall-clock time (0 = none)")
	workers := flag.Int("j", 0, "analysis worker count (0 = all CPUs); output is identical for any value")
	simJ := flag.Int("sim-j", 0, "simulator worker count: shard the event loop per node and drive it with up to N goroutines (0 = classic sequential loop); output is identical for any value")
	httpAddr := flag.String("http", "", "serve live telemetry on this address during the run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: earthrun [flags] file.ec")
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	srcBytes, err := os.ReadFile(name)
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	machine, err := earthsim.ParseOverrides(*costSpec)
	if err != nil {
		fatal(err)
	}

	faults, err := earthsim.ParseFaultSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if faults != nil && faults.Seed == 0 {
		faults.Seed = *faultSeed
	}

	var prof *profile.Data
	if *profUse != "" {
		prof, err = profile.ReadFile(*profUse)
		if err != nil {
			fatal(err)
		}
		*optimize = true
	}

	var rec *trace.Recorder
	if *traceOut != "" || *traceSum {
		rec = trace.NewRecorder(*nodes)
	}

	// -http attaches a metrics registry and a time-series sampler to the
	// run and serves them (plus pprof and the live trace, if recording)
	// for the life of the process.
	var reg *metrics.Registry
	var sampler *metrics.Sampler
	if *httpAddr != "" {
		reg = metrics.NewRegistry()
		sampler = metrics.NewSampler(0, 0)
	}

	if *compare {
		simple, err := run(name, src, runOpts{nodes: *nodes, seq: *seq, machine: machine,
			workers: *workers, simWorkers: *simJ, fuel: *fuel, deadline: *deadline})
		if err != nil {
			fatal(err)
		}
		opt, err := run(name, src, runOpts{optimize: true, nodes: *nodes, seq: *seq,
			prof: prof, machine: machine, rec: rec, workers: *workers,
			simWorkers: *simJ, fuel: *fuel, deadline: *deadline, faults: faults,
			reg: reg, sampler: sampler, httpAddr: *httpAddr})
		if err != nil {
			fatal(err)
		}
		if simple.out != opt.out {
			fatal(fmt.Errorf("outputs differ!\nsimple: %q\noptimized: %q", simple.out, opt.out))
		}
		fmt.Print(simple.out)
		fmt.Printf("simple:    %12d ns   %s\n", simple.time, simple.counts)
		fmt.Printf("optimized: %12d ns   %s\n", opt.time, opt.counts)
		fmt.Printf("improvement: %.2f%%\n", 100*(1-float64(opt.time)/float64(simple.time)))
		emitTrace(rec, *traceOut, *traceSum)
		return
	}

	r, err := run(name, src, runOpts{
		optimize: *optimize, nodes: *nodes, seq: *seq,
		prof: prof, instrument: *profOut != "",
		machine: machine, rec: rec, workers: *workers,
		simWorkers: *simJ, fuel: *fuel, deadline: *deadline, faults: faults,
		reg: reg, sampler: sampler, httpAddr: *httpAddr,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(r.out)
	if *profOut != "" {
		saved, err := saveProfile(*profOut, r.prof)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "earthrun: profile written to %s (%d run(s) accumulated)\n",
			*profOut, saved.Runs)
	}
	if *stats {
		fmt.Printf("time: %d ns (%.3f ms) on %d node(s)\n", r.time, float64(r.time)/1e6, *nodes)
		fmt.Printf("comm: %s\n", r.counts)
	}
	if r.faults != nil {
		fmt.Fprintf(os.Stderr, "earthrun: faults [%s]: %s\n", faults, r.faults)
	}
	emitTrace(rec, *traceOut, *traceSum)
}

// emitTrace writes the Chrome trace file and/or prints the text summary.
func emitTrace(rec *trace.Recorder, out string, summary bool) {
	if rec == nil {
		return
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "earthrun: trace written to %s (%d messages, %d spans)\n",
			out, len(rec.Msgs()), len(rec.Spans()))
	}
	if summary {
		fmt.Print(rec.Summarize().String())
	}
}

// saveProfile writes p to path, merging into an existing compatible profile
// first so repeated -profile runs accumulate (runs sum). It returns the
// profile actually written.
func saveProfile(path string, p *profile.Data) (*profile.Data, error) {
	if prev, err := profile.ReadFile(path); err == nil {
		if mergeErr := prev.Merge(p); mergeErr != nil {
			fmt.Fprintf(os.Stderr, "earthrun: warning: not merging into %s: %v\n", path, mergeErr)
		} else {
			p = prev
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return p, p.WriteFile(path)
}

type runOpts struct {
	optimize   bool
	nodes      int
	seq        bool
	prof       *profile.Data    // measured frequencies for the optimizer
	instrument bool             // collect a profile during the run
	machine    *earthsim.Config // cost-model override
	rec        *trace.Recorder  // event sink (nil = no tracing)
	workers    int              // analysis worker count (0 = all CPUs)
	simWorkers int              // simulator event-loop workers (0 = sequential loop)
	fuel       int64            // EU instruction budget (0 = unlimited)
	deadline   time.Duration    // host wall-clock bound (0 = none)
	faults     *earthsim.FaultConfig
	reg        *metrics.Registry // live telemetry registry (nil = off)
	sampler    *metrics.Sampler  // simulator time-series sampler (nil = off)
	httpAddr   string            // debug server address ("" = no server)
}

type runResult struct {
	out    string
	time   int64
	counts fmt.Stringer
	prof   *profile.Data
	faults *earthsim.FaultStats
}

func run(name, src string, ro runOpts) (*runResult, error) {
	p := core.NewPipeline(core.Options{Optimize: ro.optimize,
		Trace: ro.rec, Workers: ro.workers, Metrics: ro.reg})
	if ro.httpAddr != "" {
		d, err := p.ServeDebug(ro.httpAddr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "earthrun: telemetry at http://%s/ (revision %s, %s)\n",
			d.Addr, obs.Info().ShortRevision(), obs.Info().GoVersion)
		// SIGINT/SIGTERM drains the debug server (in-flight scrapes finish)
		// before the process exits, instead of the runtime's hard kill —
		// the same drain helper earthd uses for its job queue.
		go func() {
			if err := <-server.ShutdownOnSignal(5*time.Second, d.Shutdown); err != nil {
				fmt.Fprintln(os.Stderr, "earthrun: shutdown:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "earthrun: debug server drained; exiting on signal")
			os.Exit(130)
		}()
	}
	cres, err := p.Do(core.CompileRequest{Name: name, Source: src, Profile: ro.prof})
	if err != nil {
		return nil, err
	}
	u := cres.Unit
	for _, w := range u.Warnings {
		fmt.Fprintln(os.Stderr, "earthrun: warning:", w)
	}
	res, err := p.Run(u, core.RunConfig{Nodes: ro.nodes, Sequential: ro.seq,
		Profile: ro.instrument, Machine: ro.machine, SimWorkers: ro.simWorkers,
		Fuel: ro.fuel, Deadline: ro.deadline, Faults: ro.faults,
		Sampler: ro.sampler})
	if err != nil {
		return nil, err
	}
	return &runResult{out: res.Output, time: res.Time, counts: res.Counts,
		prof: res.Profile, faults: res.Faults}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "earthrun:", err)
	os.Exit(1)
}
