// Command earthd is the sharded compile-and-simulate daemon: it accepts
// EARTH-C compile-and-simulate jobs over HTTP/JSON, runs them across N
// pipeline shards with single-flight batching of identical sources, and
// serves aggregated telemetry.
//
// Usage:
//
//	earthd [flags]
//
//	-addr host:port   listen address (default :8080; use 127.0.0.1:0 for a
//	                  random port — the bound address is logged)
//	-shards N         pipeline shards (default GOMAXPROCS, capped at 8)
//	-queue N          job queue depth; a full queue answers 429 with
//	                  Retry-After (default 64)
//	-j N              analysis workers per compile (default 1)
//	-nodes N          default simulated machine size for jobs (default 4)
//	-max-fuel N       per-job simulated instruction cap (default 500M;
//	                  negative = unlimited)
//	-job-deadline d   per-job host wall-clock bound (default 60s)
//	-drain d          drain timeout on SIGINT/SIGTERM (default 30s)
//	-cache-size N     shared compile cache capacity in units (default 64;
//	                  negative disables caching)
//	-cache-dir dir    persist compile artifacts under dir across restarts
//	-journal-dir dir  durable job journal: accepted jobs are fsynced before
//	                  acknowledgement; on restart unfinished jobs replay and
//	                  completed ones answer re-submissions exactly once
//	-job-wall-deadline d  per-job wall-clock budget from acceptance to
//	                  completion (queue wait included); exceeding it aborts
//	                  the job with 504 (0 = off)
//	-brownout-after d shed trace-enabled jobs with 429 once measured queue
//	                  wait exceeds d (0 = off)
//	-obs              record per-job host-side timelines: span trees served
//	                  by GET /jobs/{id}/timeline and /debug/jobs, per-stage
//	                  latency histograms in /metrics (default true)
//	-obs-recent N     completed timelines retained in the ring (default 64)
//	-obs-slowest N    slowest timelines retained alongside it (default 16)
//	-slow-job d       dump the timeline of any job slower than d into the
//	                  log (0 = off)
//	-log-format f     structured log encoding: text or json (default text)
//	-log-level l      log verbosity: debug, info, warn, error (default info;
//	                  debug adds a line per job, info an access-log line per
//	                  request)
//
// Submit a job:
//
//	curl -s localhost:8080/jobs -d '{"benchmark":"power","nodes":4,"quick":true}'
//	curl -s localhost:8080/jobs -d '{"source":"int main() { return 42; }","nodes":1}'
//
// Abort a job: DELETE /jobs/{id}; poll one: GET /jobs/{id} (ids come from
// the "id" request field or the result's job_id). Debug a slow one:
// GET /jobs/{id}/timeline?format=text.
//
// On SIGINT/SIGTERM the daemon stops intake (new submissions get 503),
// finishes every accepted job, flushes in-flight responses, and exits 0;
// jobs accepted before the signal are never lost. With -journal-dir, jobs
// survive even a SIGKILL: the journal replays them on the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "pipeline shards (0 = GOMAXPROCS capped at 8)")
	queue := flag.Int("queue", 0, "job queue depth (0 = default 64)")
	workers := flag.Int("j", 0, "analysis workers per compile (0 = default 1)")
	simJ := flag.Int("sim-j", 0, "simulator event-loop workers per run (0 = classic sequential loop); results are identical for any value")
	nodes := flag.Int("nodes", 0, "default simulated machine size (0 = default 4)")
	maxFuel := flag.Int64("max-fuel", 0, "per-job instruction cap (0 = default 500M, negative = unlimited)")
	jobDeadline := flag.Duration("job-deadline", 0, "per-job host wall-clock bound (0 = default 60s)")
	drain := flag.Duration("drain", 30*time.Second, "drain timeout on SIGINT/SIGTERM")
	cacheSize := flag.Int("cache-size", 0, "compile cache capacity in units (0 = default 64, negative = disabled)")
	cacheDir := flag.String("cache-dir", "", "persist compile artifacts here across restarts")
	journalDir := flag.String("journal-dir", "", "durable job journal directory (empty = journaling off)")
	wallDeadline := flag.Duration("job-wall-deadline", 0, "per-job wall-clock budget, acceptance to completion (0 = off)")
	brownout := flag.Duration("brownout-after", 0, "shed trace-enabled jobs once measured queue wait exceeds this (0 = off)")
	obsOn := flag.Bool("obs", true, "record per-job host-side timelines (GET /jobs/{id}/timeline, /debug/jobs)")
	obsRecent := flag.Int("obs-recent", 0, "completed timelines retained in the ring (0 = default 64)")
	obsSlowest := flag.Int("obs-slowest", 0, "slowest completed timelines retained (0 = default 16)")
	slowJob := flag.Duration("slow-job", 0, "dump timelines of jobs slower than this into the log (0 = off)")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: earthd [flags]")
		flag.Usage()
		os.Exit(2)
	}

	log, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "earthd:", err)
		os.Exit(2)
	}

	d, err := server.Open(server.Config{
		Shards:          *shards,
		QueueDepth:      *queue,
		Workers:         *workers,
		DefaultNodes:    *nodes,
		MaxFuel:         *maxFuel,
		JobDeadline:     *jobDeadline,
		SimWorkers:      *simJ,
		CacheSize:       *cacheSize,
		CacheDir:        *cacheDir,
		JournalDir:      *journalDir,
		JobWallDeadline: *wallDeadline,
		BrownoutAfter:   *brownout,
		Obs: obs.Options{
			Enabled: *obsOn,
			Recent:  *obsRecent,
			Slowest: *obsSlowest,
			SlowJob: *slowJob,
		},
		Logger: log,
	})
	if err != nil {
		log.Error("startup failed", "err", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: d.Handler()}
	cfg := d.Config()
	// The bound address stays inside the message text: the boot smoke in
	// check.sh and the chaos harness both scan for "listening on <addr>".
	build := obs.Info()
	log.Info(fmt.Sprintf("listening on %s (%d shards, queue %d)", ln.Addr(), cfg.Shards, cfg.QueueDepth),
		"revision", build.ShortRevision(), "go", build.GoVersion, "obs", *obsOn)
	if cfg.JournalDir != "" {
		log.Info("journaling jobs", "dir", cfg.JournalDir)
	}

	done := server.ShutdownOnSignal(*drain, func(ctx context.Context) error {
		log.Info("draining (intake stopped, finishing accepted jobs)")
		// Drain first so every accepted job completes and its waiting
		// handler gets the outcome, then let the HTTP server retire those
		// in-flight responses.
		if err := d.Drain(ctx); err != nil {
			srv.Close()
			return err
		}
		return srv.Shutdown(ctx)
	})

	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Error("serve failed", "err", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		log.Error("drain failed", "err", err)
		os.Exit(1)
	}
	log.Info("drained cleanly")
}
