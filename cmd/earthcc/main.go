// Command earthcc is the EARTH-C compiler driver: it parses, checks,
// lowers, optionally optimizes communication, and prints the requested
// intermediate representation.
//
// Usage:
//
//	earthcc [flags] file.ec
//
//	-O                 enable communication optimization (Phase II)
//	-dump=simple       print SIMPLE form (default)
//	-dump=ast          print the (inlined, restructured) AST
//	-dump=threaded     print threaded-code disassembly
//	-dump=placement    print per-statement RemoteReads/RemoteWrites sets
//	-func name         restrict -dump=simple/placement output to one function
//	-labels            include Si statement labels in SIMPLE output
//	-no-inline         disable Phase I function inlining
//	-threshold N       blocking threshold in words (default 3)
//	-report            print the communication-selection report
//	-stats             print per-phase compile timings and optimization
//	                   counters
//	-reorder           cluster remotely-accessed struct fields (paper's §7)
//	-profile-gen out   compile instrumented, run on -nodes, write the
//	                   profile artifact to out (no dump)
//	-profile-use in    optimize with measured frequencies from in (implies -O)
//	-nodes N           machine size for -profile-gen (default 1)
//	-j N               compile with N analysis workers (0 = all CPUs); the
//	                   output is identical for every worker count
//	-cache-dir dir     persist compile artifacts under dir; a later
//	                   -dump=threaded of unchanged source is served from the
//	                   store without compiling (corrupted entries fall back
//	                   to a cold compile)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/earthc"
	"repro/internal/profile"
	"repro/internal/simple"
)

func main() {
	optimize := flag.Bool("O", false, "enable communication optimization")
	dump := flag.String("dump", "simple", "what to print: simple|ast|threaded|placement")
	fnFilter := flag.String("func", "", "restrict simple/placement dumps to one function")
	labels := flag.Bool("labels", false, "show Si statement labels")
	noInline := flag.Bool("no-inline", false, "disable function inlining")
	threshold := flag.Int("threshold", 3, "blocking threshold in words")
	report := flag.Bool("report", false, "print the selection report")
	stats := flag.Bool("stats", false, "print per-phase compile timings and optimization counters")
	reorder := flag.Bool("reorder", false, "reorder struct fields to cluster remote accesses")
	profGen := flag.String("profile-gen", "", "collect a profile via an instrumented run and write it here")
	profUse := flag.String("profile-use", "", "optimize using a previously collected profile (implies -O)")
	nodes := flag.Int("nodes", 1, "machine size for -profile-gen")
	workers := flag.Int("j", 0, "analysis worker count (0 = all CPUs); output is identical for any value")
	cacheDir := flag.String("cache-dir", "", "persist compile artifacts here and serve -dump=threaded/-report from valid entries")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: earthcc [flags] file.ec")
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	src, err := os.ReadFile(name)
	if err != nil {
		fatal(err)
	}

	if *profGen != "" {
		p := core.NewPipeline(core.Options{NoInline: *noInline, Workers: *workers})
		u, err := p.Compile(name, string(src))
		if err != nil {
			fatal(err)
		}
		res, err := p.Run(u, core.RunConfig{Nodes: *nodes, Profile: true})
		if err != nil {
			fatal(err)
		}
		if err := res.Profile.WriteFile(*profGen); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "earthcc: wrote profile for %s (%d nodes) to %s\n",
			name, *nodes, *profGen)
		return
	}

	opts := core.Options{Optimize: *optimize, NoInline: *noInline, ReorderFields: *reorder,
		Stats: *stats, Workers: *workers}
	opts.Sel.BlockThreshold = *threshold
	req := core.CompileRequest{Name: name, Source: string(src)}
	if *profUse != "" {
		p, err := profile.ReadFile(*profUse)
		if err != nil {
			fatal(err)
		}
		req.Profile = p
		opts.Optimize = true
	}
	var c *cache.Cache
	if *cacheDir != "" {
		c = cache.New(0, *cacheDir)
		opts.Cache = c
	}
	p := core.NewPipeline(opts)
	// Disk fast path: when the requested outputs are exactly the persisted
	// artifacts, a valid cache entry serves them without compiling.
	// Corrupted or truncated entries fail validation and fall through to a
	// cold compile.
	if c != nil && *dump == "threaded" && !*stats && *fnFilter == "" {
		if a, ok := c.LoadArtifact(p.CacheKey(req)); ok {
			for _, w := range a.Warnings {
				fmt.Fprintln(os.Stderr, "earthcc: warning:", w)
			}
			fmt.Print(a.Disasm)
			if *report && a.Report != "" {
				fmt.Println(a.Report)
			}
			fmt.Fprintln(os.Stderr, "earthcc: cache: 1 disk hit (compile skipped)")
			return
		}
	}
	res, err := p.Do(req)
	if err != nil {
		fatal(err)
	}
	u := res.Unit
	if c != nil {
		fmt.Fprintf(os.Stderr, "earthcc: cache: %d function(s) reused, %d recompiled\n",
			res.FuncsReused, res.FuncsRecompiled)
	}
	for _, w := range u.Warnings {
		fmt.Fprintln(os.Stderr, "earthcc: warning:", w)
	}
	wantFn := func(f *simple.Func) bool {
		return *fnFilter == "" || f.Name == *fnFilter
	}
	if *fnFilter != "" && u.Simple.FuncByName(*fnFilter) == nil {
		fmt.Fprintf(os.Stderr, "earthcc: warning: -func %q matches no function\n", *fnFilter)
	}
	switch *dump {
	case "ast":
		fmt.Print(earthc.Print(u.File))
	case "simple":
		for _, f := range u.Simple.Funcs {
			if wantFn(f) {
				fmt.Println(simple.FuncString(f, simple.PrintOptions{Labels: *labels}))
			}
		}
	case "threaded":
		disasm, err := u.Disasm()
		if err != nil {
			fatal(err)
		}
		fmt.Print(disasm)
	case "placement":
		if u.Placement == nil {
			fatal(fmt.Errorf("placement sets require -O"))
		}
		for _, f := range u.Simple.Funcs {
			if !wantFn(f) {
				continue
			}
			fmt.Printf("=== %s ===\n", f.Name)
			simple.WalkStmts(f.Body, func(s simple.Stmt) {
				if b, ok := s.(*simple.Basic); ok {
					if rs := u.Placement.Reads[s]; rs != nil && rs.Len() > 0 {
						fmt.Printf("  RemoteReads(S%d)  = %s\n", b.Label, rs)
					}
					if ws := u.Placement.Writes[s]; ws != nil && ws.Len() > 0 {
						fmt.Printf("  RemoteWrites(S%d) = %s\n", b.Label, ws)
					}
				}
			})
		}
	default:
		fatal(fmt.Errorf("unknown -dump mode %q", *dump))
	}
	if *report && u.Report != nil {
		fmt.Println(u.Report)
	}
	if *stats && u.Stats != nil {
		fmt.Print(u.Stats)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "earthcc:", err)
	os.Exit(1)
}
