// Command earthcc is the EARTH-C compiler driver: it parses, checks,
// lowers, optionally optimizes communication, and prints the requested
// intermediate representation.
//
// Usage:
//
//	earthcc [flags] file.ec
//
//	-O               enable communication optimization (Phase II)
//	-dump=simple     print SIMPLE form (default)
//	-dump=ast        print the (inlined, restructured) AST
//	-dump=threaded   print threaded-code disassembly
//	-dump=placement  print per-statement RemoteReads/RemoteWrites sets
//	-labels          include Si statement labels in SIMPLE output
//	-no-inline       disable Phase I function inlining
//	-threshold N     blocking threshold in words (default 3)
//	-report          print the communication-selection report
//	-reorder         cluster remotely-accessed struct fields (paper's §7)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/earthc"
	"repro/internal/simple"
	"repro/internal/threaded"
)

func main() {
	optimize := flag.Bool("O", false, "enable communication optimization")
	dump := flag.String("dump", "simple", "what to print: simple|ast|threaded|placement")
	labels := flag.Bool("labels", false, "show Si statement labels")
	noInline := flag.Bool("no-inline", false, "disable function inlining")
	threshold := flag.Int("threshold", 3, "blocking threshold in words")
	report := flag.Bool("report", false, "print the selection report")
	reorder := flag.Bool("reorder", false, "reorder struct fields to cluster remote accesses")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: earthcc [flags] file.ec")
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	src, err := os.ReadFile(name)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Optimize: *optimize, NoInline: *noInline, ReorderFields: *reorder}
	opts.Sel.BlockThreshold = *threshold
	u, err := core.Compile(name, string(src), opts)
	if err != nil {
		fatal(err)
	}
	switch *dump {
	case "ast":
		fmt.Print(earthc.Print(u.File))
	case "simple":
		for _, f := range u.Simple.Funcs {
			fmt.Println(simple.FuncString(f, simple.PrintOptions{Labels: *labels}))
		}
	case "threaded":
		tp, err := u.Threaded(threaded.Options{})
		if err != nil {
			fatal(err)
		}
		names := make([]string, 0, len(tp.Funcs))
		for n := range tp.Funcs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(tp.Funcs[n].Disasm())
		}
	case "placement":
		if u.Placement == nil {
			fatal(fmt.Errorf("placement sets require -O"))
		}
		for _, f := range u.Simple.Funcs {
			fmt.Printf("=== %s ===\n", f.Name)
			simple.WalkStmts(f.Body, func(s simple.Stmt) {
				if b, ok := s.(*simple.Basic); ok {
					if rs := u.Placement.Reads[s]; rs != nil && rs.Len() > 0 {
						fmt.Printf("  RemoteReads(S%d)  = %s\n", b.Label, rs)
					}
					if ws := u.Placement.Writes[s]; ws != nil && ws.Len() > 0 {
						fmt.Printf("  RemoteWrites(S%d) = %s\n", b.Label, ws)
					}
				}
			})
		}
	default:
		fatal(fmt.Errorf("unknown -dump mode %q", *dump))
	}
	if *report && u.Report != nil {
		fmt.Println(u.Report)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "earthcc:", err)
	os.Exit(1)
}
