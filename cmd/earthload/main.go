// Command earthload drives an earthd service with a mixed Olden workload at
// configurable concurrency and reports sustained throughput and latency
// percentiles — the proof that the sharded service holds up under
// production-style traffic.
//
// Usage:
//
//	earthload [flags]
//
//	-addr URL     target an already-running earthd (e.g. http://localhost:8080)
//	-selfhost     start an in-process earthd on a loopback port instead
//	-shards N     selfhost shard count (default 4)
//	-sweep list   selfhost shard-count sweep, e.g. "1,2,4,8": run the same
//	              load at each count (implies -selfhost)
//	-c N          concurrent clients (default 8)
//	-n N          total jobs per run (default 40)
//	-mix names    benchmark mix, round-robin (default all five Olden)
//	-nodes N      simulated machine size per job (default 4)
//	-full         use the benchmarks' full default sizes instead of the
//	              quick parameters
//	-bench        emit Go-benchmark-formatted result lines on stdout
//	              (BenchmarkEarthload/shards=N ... jobs/sec) for
//	              benchdiff -emit; human-readable stats go to stderr
//	-attrib       after the run, fetch the server's per-stage latency
//	              histograms (/metrics.json) and print the tail-latency
//	              attribution table — which stage dominates p99
//	-log-format f diagnostics encoding: text or json (default text)
//
// The exit status is 1 if any job failed. On SIGINT the run stops issuing
// new jobs, reports the partial throughput/latency summary for the jobs
// that did complete, and exits 130 — an interrupted run never vanishes
// without its numbers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/olden"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "", "target earthd base URL (empty with -selfhost)")
	selfhost := flag.Bool("selfhost", false, "start an in-process earthd on a loopback port")
	shards := flag.Int("shards", 4, "selfhost shard count")
	sweep := flag.String("sweep", "", "selfhost shard sweep, e.g. \"1,2,4,8\" (implies -selfhost)")
	conc := flag.Int("c", 8, "concurrent clients")
	total := flag.Int("n", 40, "total jobs per run")
	mix := flag.String("mix", "", "comma-separated benchmark mix (default: all five Olden)")
	nodes := flag.Int("nodes", 4, "simulated machine size per job")
	full := flag.Bool("full", false, "use full benchmark sizes instead of quick parameters")
	bench := flag.Bool("bench", false, "emit Go-benchmark-formatted lines for benchdiff")
	attrib := flag.Bool("attrib", false, "print the server's per-stage tail-latency attribution after the run")
	logFormat := flag.String("log-format", "text", "diagnostics encoding: text or json")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logFormat, "info")
	if err != nil {
		fmt.Fprintln(os.Stderr, "earthload:", err)
		os.Exit(2)
	}
	names := benchMix(*mix)
	if names == nil {
		log.Error("unknown benchmark in -mix", "mix", *mix)
		os.Exit(2)
	}
	if *sweep != "" {
		*selfhost = true
	}
	if !*selfhost && *addr == "" {
		log.Error("need -addr URL or -selfhost")
		os.Exit(2)
	}

	counts := []int{*shards}
	if *sweep != "" {
		counts = counts[:0]
		for _, f := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				log.Error("bad -sweep entry", "entry", f)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
	}

	// A SIGINT mid-run used to kill the process before any summary was
	// printed — minutes of load numbers lost. Trap it: stop issuing new
	// jobs, let in-flight ones finish, report the partial stats, exit 130.
	// A second SIGINT falls through to the default handler (hard kill).
	var interrupted atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		interrupted.Store(true)
		signal.Stop(sig)
		log.Warn("interrupted — finishing in-flight jobs, reporting partial results")
	}()

	failed := false
	for _, sc := range counts {
		url := *addr
		var stop func()
		if *selfhost {
			var err error
			url, stop, err = selfhostServer(sc, *attrib)
			if err != nil {
				log.Error("selfhost start failed", "err", err)
				os.Exit(1)
			}
		}
		st := drive(url, names, *conc, *total, *nodes, !*full, &interrupted, log)
		if *attrib {
			// Fetch before stopping the selfhost server: the histograms live
			// in the server's registry.
			rows, err := fetchAttribution(url)
			if err != nil {
				log.Error("attribution fetch failed", "err", err)
			} else {
				st.attrib = rows
			}
		}
		if stop != nil {
			stop()
		}
		if interrupted.Load() {
			log.Warn("partial run: interrupted before all jobs completed",
				"completed", st.ok+st.failed, "total", *total)
		}
		st.report(os.Stderr, sc)
		if *bench && !interrupted.Load() {
			// One line per shard count in `go test -bench` format so
			// benchdiff -emit folds the sweep into the BENCH_*.json perf
			// trajectory. Partial runs are not comparable, so they emit
			// nothing rather than a misleading point.
			fmt.Printf("BenchmarkEarthload/shards=%d \t%8d\t%12.0f ns/op\t%12.2f jobs/sec\n",
				sc, st.ok, st.meanNs(), st.jobsPerSec())
		}
		if st.failed > 0 {
			failed = true
		}
		if interrupted.Load() {
			os.Exit(130)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// benchMix resolves the -mix flag against the Olden registry (nil on an
// unknown name).
func benchMix(spec string) []string {
	if spec == "" {
		var names []string
		for _, b := range olden.All() {
			names = append(names, b.Name)
		}
		return names
	}
	var names []string
	for _, f := range strings.Split(spec, ",") {
		name := strings.TrimSpace(f)
		if olden.ByName(name) == nil {
			return nil
		}
		names = append(names, name)
	}
	return names
}

// selfhostServer starts an in-process earthd on a loopback port and returns
// its base URL plus a stop function that drains it. Host-side tracing is on
// only when the run wants the attribution table — the benchmarked
// configuration stays identical to earlier revisions otherwise.
func selfhostServer(shards int, withObs bool) (string, func(), error) {
	d := server.New(server.Config{Shards: shards, Obs: obs.Options{Enabled: withObs}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d.Drain(ctx)
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// stats accumulates one load run's outcomes.
type stats struct {
	ok, failed, retried int
	batched             int
	latencies           []time.Duration // successful jobs only
	wall                time.Duration
	perShard            map[int]int
	attrib              []stageRow // per-stage tail latency, when -attrib
}

// stageRow is one stage of the server's tail-latency attribution report,
// decoded from the earthd_stage_ns histograms in /metrics.json.
type stageRow struct {
	stage         string
	count         int64
	p50, p95, p99 int64
}

// fetchAttribution pulls the server's merged registry and extracts the
// per-stage host-latency histograms recorded by its span timelines.
func fetchAttribution(base string) ([]stageRow, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics.json: status %d", resp.StatusCode)
	}
	var m struct {
		Histograms []struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
			P50   int64  `json:"p50"`
			P95   int64  `json:"p95"`
			P99   int64  `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	const prefix = `earthd_stage_ns{stage="`
	var rows []stageRow
	for _, h := range m.Histograms {
		if !strings.HasPrefix(h.Name, prefix) || h.Count == 0 {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(h.Name, prefix), `"}`)
		rows = append(rows, stageRow{stage: stage, count: h.Count, p50: h.P50, p95: h.P95, p99: h.P99})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("no earthd_stage_ns histograms (is the server running with -obs?)")
	}
	// Order by p99 contribution, dominant stage first — the question the
	// table answers is "where does p99 go?".
	sort.Slice(rows, func(i, j int) bool { return rows[i].p99 > rows[j].p99 })
	return rows, nil
}

func (s *stats) jobsPerSec() float64 {
	if s.wall <= 0 {
		return 0
	}
	return float64(s.ok) / s.wall.Seconds()
}

func (s *stats) meanNs() float64 {
	if s.ok == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.latencies {
		sum += d
	}
	return float64(sum.Nanoseconds()) / float64(s.ok)
}

func (s *stats) pct(q float64) time.Duration {
	if len(s.latencies) == 0 {
		return 0
	}
	i := int(q * float64(len(s.latencies)-1))
	return s.latencies[i]
}

func (s *stats) report(w io.Writer, shards int) {
	sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
	fmt.Fprintf(w, "earthload: shards=%d jobs=%d failed=%d retried=%d wall=%.2fs\n",
		shards, s.ok+s.failed, s.failed, s.retried, s.wall.Seconds())
	fmt.Fprintf(w, "  throughput: %.2f jobs/sec sustained\n", s.jobsPerSec())
	fmt.Fprintf(w, "  latency: p50=%s p95=%s p99=%s max=%s\n",
		s.pct(0.50).Round(time.Millisecond), s.pct(0.95).Round(time.Millisecond),
		s.pct(0.99).Round(time.Millisecond), s.pct(1.0).Round(time.Millisecond))
	fmt.Fprintf(w, "  batching: %d of %d jobs shared a concurrent compile\n", s.batched, s.ok)
	var ids []int
	for id := range s.perShard {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var parts []string
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%d:%d", id, s.perShard[id]))
	}
	fmt.Fprintf(w, "  shard distribution: %s\n", strings.Join(parts, " "))
	if len(s.attrib) > 0 {
		fmt.Fprintf(w, "  attribution (server host time by stage, p99-dominant first):\n")
		fmt.Fprintf(w, "    %-18s %8s %12s %12s %12s\n", "STAGE", "COUNT", "P50", "P95", "P99")
		for _, a := range s.attrib {
			fmt.Fprintf(w, "    %-18s %8d %12s %12s %12s\n", a.stage, a.count,
				time.Duration(a.p50).Round(time.Microsecond),
				time.Duration(a.p95).Round(time.Microsecond),
				time.Duration(a.p99).Round(time.Microsecond))
		}
	}
}

// drive fires total jobs at the service from conc concurrent clients,
// round-robining the benchmark mix, honoring 429/503 backpressure with the
// server's Retry-After hint. Once stop flips, workers finish their current
// job and issue no more.
func drive(base string, names []string, conc, total, nodes int, quick bool, stop *atomic.Bool, log *slog.Logger) *stats {
	st := &stats{perShard: make(map[int]int)}
	var mu sync.Mutex
	var next atomic.Int64
	client := &http.Client{Timeout: 5 * time.Minute}
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || stop.Load() {
					return
				}
				body, _ := json.Marshal(server.JobRequest{
					V:         server.SchemaVersion,
					Benchmark: names[i%len(names)],
					Nodes:     nodes,
					Quick:     quick,
				})
				jt0 := time.Now()
				res, retries, err := post(client, base+"/jobs", body)
				lat := time.Since(jt0)
				mu.Lock()
				st.retried += retries
				if err != nil {
					st.failed++
					log.Error("job failed", "job", i, "benchmark", names[i%len(names)], "err", err)
				} else {
					st.ok++
					st.latencies = append(st.latencies, lat)
					if res.Batched {
						st.batched++
					}
					st.perShard[res.Shard]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	st.wall = time.Since(t0)
	return st
}

// post submits one job, retrying on 429/503 per the Retry-After hint (with
// a short floor so loopback tests don't spin), and returns the decoded
// result plus the retry count.
func post(client *http.Client, url string, body []byte) (*server.JobResult, int, error) {
	retries := 0
	for {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, retries, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, retries, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var r server.JobResult
			if err := json.Unmarshal(data, &r); err != nil {
				return nil, retries, err
			}
			return &r, retries, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if retries >= 100 {
				return nil, retries, fmt.Errorf("status %d after %d retries", resp.StatusCode, retries)
			}
			retries++
			delay := 50 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				// Honor the hint, but cap it: this is a load generator, and
				// the hint is sized for polite clients.
				if d := time.Duration(ra) * time.Second / 4; d > delay {
					delay = d
				}
			}
			time.Sleep(delay)
		default:
			return nil, retries, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		}
	}
}
