// Command earthchaos is the crash-safety harness for earthd: it proves the
// durable-journal contract by killing the daemon (SIGKILL — no drain, no
// goodbye) in the middle of a seeded load mix, restarting it against the
// same journal, and asserting that every job the dead process acknowledged
// completes exactly once with a payload byte-identical to a clean run.
//
// Usage:
//
//	earthchaos -earthd path/to/earthd [flags]
//
//	-earthd path  the earthd binary to torture (required)
//	-dir path     journal directory (default: a temp dir, removed on success)
//	-n N          jobs per cycle (default 12)
//	-cycles N     kill/restart cycles (default 2)
//	-seed N       seed for the load mix and kill points (default 1)
//	-v            log each job's fate (debug level)
//	-log-format f diagnostics encoding: text or json (default text)
//
// Protocol per cycle: submit N async jobs (ids "chaos-<seed>-<cycle>-<i>"),
// SIGKILL the daemon after a seed-derived number of 202s, restart it on the
// same journal, re-submit every id (idempotent: journaled-complete ids are
// answered from their records, pending ids coalesce onto their replay, lost
// ids run fresh), and compare each payload against the reference run. A
// final sweep re-submits every id once more and requires replayed=true —
// the exactly-once check: nothing runs twice.
//
// The reference payloads come from a journal-less earthd started first with
// the same mix; determinism (same spec + seed => byte-identical canonical
// payload) is what makes "completed exactly once" checkable at all.
//
// Exit status: 0 on success, 1 on any lost job, payload divergence, or
// double execution.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// log carries the harness's structured diagnostics; fatal routes through it
// before exiting so failures keep their encoding under -log-format json.
var log *slog.Logger = obs.Discard()

func main() {
	bin := flag.String("earthd", "", "earthd binary to run (required)")
	dir := flag.String("dir", "", "journal directory (default: temp dir)")
	n := flag.Int("n", 12, "jobs per cycle")
	cycles := flag.Int("cycles", 2, "kill/restart cycles")
	seed := flag.Int64("seed", 1, "load-mix and kill-point seed")
	verbose := flag.Bool("v", false, "log each job's fate (debug level)")
	logFormat := flag.String("log-format", "text", "diagnostics encoding: text or json")
	flag.Parse()
	if *bin == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: earthchaos -earthd path/to/earthd [flags]")
		flag.Usage()
		os.Exit(2)
	}
	level := "info"
	if *verbose {
		level = "debug"
	}
	var err error
	if log, err = obs.NewLogger(os.Stderr, *logFormat, level); err != nil {
		fmt.Fprintln(os.Stderr, "earthchaos:", err)
		os.Exit(2)
	}
	if *dir == "" {
		d, err := os.MkdirTemp("", "earthchaos-*")
		if err != nil {
			fatal("%v", err)
		}
		defer os.RemoveAll(d)
		*dir = d
	}

	h := &harness{bin: *bin, dir: *dir,
		rng: rand.New(rand.NewSource(*seed)), client: &http.Client{Timeout: 5 * time.Minute}}

	// Reference pass: a journal-less daemon runs the whole mix cleanly.
	specs := make([][]server.JobRequest, *cycles)
	refs := make([]map[string]string, *cycles)
	ref := h.start()
	for c := 0; c < *cycles; c++ {
		specs[c] = h.mix(c, *n, *seed)
		refs[c] = map[string]string{}
		for i := range specs[c] {
			req := specs[c][i] // copy; the reference run has no idempotency key
			req.ID, req.Async = "", false
			r, err := h.submitSync(ref.url, &req)
			if err != nil {
				fatal("reference job %d/%d: %v", c, i, err)
			}
			refs[c][specs[c][i].ID] = canonical(r)
		}
	}
	ref.stop()

	// Chaos passes: journaled daemon, killed mid-mix each cycle.
	lost, diverged, reran := 0, 0, 0
	d := h.start("-journal-dir", h.dir)
	for c := 0; c < *cycles; c++ {
		kill := 1 + h.rng.Intn(*n) // SIGKILL after this many 202s
		acked := 0
		for i := range specs[c] {
			req := specs[c][i]
			if err := h.submitAsync(d.url, &req); err != nil {
				// The daemon died under us (or a race with the kill below) —
				// this submission holds no acknowledgement to honor.
				h.logf("cycle %d: job %s not acknowledged: %v", c, req.ID, err)
				continue
			}
			acked++
			if acked == kill {
				h.logf("cycle %d: SIGKILL after %d of %d accepts", c, acked, *n)
				d.kill()
				d = h.start("-journal-dir", h.dir)
			}
		}

		// Recovery: every id must resolve — journaled completions answer from
		// their records, pending ones coalesce onto their replay, never-acked
		// ones run fresh. Identical payloads either way.
		for i := range specs[c] {
			req := specs[c][i]
			req.Async = false
			r, err := h.submitSync(d.url, &req)
			if err != nil {
				log.Error("job lost", "cycle", c, "job", req.ID, "err", err)
				lost++
				continue
			}
			if got, want := canonical(r), refs[c][req.ID]; got != want {
				log.Error("payload diverged from clean run",
					"cycle", c, "job", req.ID, "got", got, "want", want)
				diverged++
			}
		}

		// Exactly-once: a second submission of every id must be served from
		// the completion record, not re-run.
		for i := range specs[c] {
			req := specs[c][i]
			req.Async = false
			r, err := h.submitSync(d.url, &req)
			if err != nil {
				log.Error("job vanished after completing", "cycle", c, "job", req.ID, "err", err)
				lost++
				continue
			}
			if !r.Replayed {
				log.Error("job ran again instead of replaying its record", "cycle", c, "job", req.ID)
				reran++
			}
		}
		log.Info("cycle complete: every acknowledged job completed exactly once",
			"cycle", c, "jobs", *n, "kill_point", kill)
	}
	d.stop()

	if lost+diverged+reran > 0 {
		fatal("%d lost, %d diverged, %d re-ran", lost, diverged, reran)
	}
	log.Info(fmt.Sprintf("PASS: %d cycles x %d jobs, every acknowledged job completed exactly once, payloads byte-identical to the clean run",
		*cycles, *n))
}

func fatal(format string, args ...any) {
	log.Error("FAIL: " + fmt.Sprintf(format, args...))
	os.Exit(1)
}

type harness struct {
	bin, dir string
	rng      *rand.Rand
	client   *http.Client
}

// logf emits a debug-level diagnostic; -v lowers the logger to debug so
// these show up.
func (h *harness) logf(format string, args ...any) {
	log.Debug(fmt.Sprintf(format, args...))
}

// mix builds one cycle's seeded job list: quick Olden benchmarks crossed
// with machine sizes, plus an inline source. Ids are stable across the
// reference and chaos passes of one invocation.
func (h *harness) mix(cycle, n int, seed int64) []server.JobRequest {
	benches := []string{"power", "perimeter", "voronoi", "tsp", "health"}
	reqs := make([]server.JobRequest, n)
	for i := range reqs {
		reqs[i] = server.JobRequest{
			V:         server.SchemaVersion,
			ID:        fmt.Sprintf("chaos-%d-%d-%d", seed, cycle, i),
			Benchmark: benches[i%len(benches)],
			Quick:     true,
			Nodes:     2 + 2*(i%2),
			Async:     true,
		}
	}
	return reqs
}

// daemon is one child earthd process.
type daemon struct {
	cmd *exec.Cmd
	url string
}

// start launches the earthd binary on a random loopback port and waits for
// its "listening on" line.
func (h *harness) start(extra ...string) *daemon {
	args := append([]string{"-addr", "127.0.0.1:0", "-shards", "2", "-queue", "64"}, extra...)
	cmd := exec.Command(h.bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fatal("%v", err)
	}
	cmd.Stdout = os.Stdout
	if err := cmd.Start(); err != nil {
		fatal("start %s: %v", h.bin, err)
	}
	sc := bufio.NewScanner(stderr)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		h.logf("earthd: %s", line)
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			addr = strings.Fields(rest)[0]
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		fatal("earthd never reported its address")
	}
	go func() { // keep draining so the child never blocks on stderr
		for sc.Scan() {
			h.logf("earthd: %s", sc.Text())
		}
	}()
	d := &daemon{cmd: cmd, url: "http://" + addr}
	// The port is up before the log line, but be deliberate: health-check it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := h.client.Get(d.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			return d
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			fatal("earthd never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill is the chaos move: SIGKILL, no drain, no journal close.
func (d *daemon) kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// stop shuts the daemon down gracefully (SIGTERM -> drain).
func (d *daemon) stop() {
	d.cmd.Process.Signal(os.Interrupt)
	d.cmd.Wait()
}

// submitAsync POSTs one async job; any 2xx acknowledgement counts as
// accepted (202 queued, or 200 when the id was already completed). 429/503
// back off and retry — backpressure is not chaos.
func (h *harness) submitAsync(base string, req *server.JobRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		resp, err := h.client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == 202 || resp.StatusCode == 200:
			return nil
		case resp.StatusCode == 429 || resp.StatusCode == 503:
			if attempt > 100 {
				return fmt.Errorf("status %d after %d retries", resp.StatusCode, attempt)
			}
			time.Sleep(50 * time.Millisecond)
		default:
			return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		}
	}
}

// submitSync POSTs one job and blocks for its result, retrying through
// backpressure.
func (h *harness) submitSync(base string, req *server.JobRequest) (*server.JobResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := h.client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch {
		case resp.StatusCode == 200:
			var r server.JobResult
			if err := json.Unmarshal(data, &r); err != nil {
				return nil, err
			}
			return &r, nil
		case resp.StatusCode == 429 || resp.StatusCode == 503:
			if attempt > 200 {
				return nil, fmt.Errorf("status %d after %d retries", resp.StatusCode, attempt)
			}
			time.Sleep(50 * time.Millisecond)
		default:
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		}
	}
}

// canonical is the byte form equality is stated over: the deterministic
// portion of the payload (bookkeeping and host latency zeroed).
func canonical(r *server.JobResult) string {
	b, err := r.CanonicalPayload()
	if err != nil {
		return fmt.Sprintf("unmarshalable: %v", err)
	}
	return string(b)
}
