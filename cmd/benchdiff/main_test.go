package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runDiff(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

const benchText = `BenchmarkSimulator-8   364   3374339 ns/op   257219 guest_instructions   9049000 B/op   258 allocs/op
BenchmarkCompile-8     274   4545214 ns/op   2764087 B/op   28861 allocs/op
`

func writeBaseline(t *testing.T, benchOut string) string {
	t.Helper()
	code, artifact, stderr := runDiff(t, []string{"-emit"}, benchOut)
	if code != 0 {
		t.Fatalf("-emit failed (%d): %s", code, stderr)
	}
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := os.WriteFile(path, []byte(artifact), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanComparisonExitsZero(t *testing.T) {
	base := writeBaseline(t, benchText)
	code, out, stderr := runDiff(t, []string{"-baseline", base}, benchText)
	if code != 0 {
		t.Fatalf("self-comparison exited %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "within tolerance") {
		t.Errorf("stdout: %s", out)
	}
}

func TestSyntheticRegressionExitsNonzero(t *testing.T) {
	base := writeBaseline(t, benchText)
	// ns/op doubled and the deterministic guest-instruction count drifted.
	regressed := `BenchmarkSimulator-8   364   6748678 ns/op   257220 guest_instructions   9049000 B/op   258 allocs/op
BenchmarkCompile-8     274   4545214 ns/op   2764087 B/op   28861 allocs/op
`
	code, out, _ := runDiff(t, []string{"-baseline", base}, regressed)
	if code != 1 {
		t.Fatalf("regression exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "ns_per_op") || !strings.Contains(out, "guest_instructions") {
		t.Errorf("regressed metrics not reported:\n%s", out)
	}
}

func TestQuickModeLoosensButKeepsExact(t *testing.T) {
	base := writeBaseline(t, benchText)
	// +60% ns/op: over the 40% default, under the ×4 quick limit. The
	// guest-instruction drift must still fail even in quick mode.
	noisy := `BenchmarkSimulator-8   364   5398942 ns/op   257219 guest_instructions   9049000 B/op   258 allocs/op
`
	code, out, _ := runDiff(t, []string{"-baseline", base, "-quick"}, noisy)
	if code != 0 {
		t.Fatalf("quick mode flagged host noise (%d):\n%s", code, out)
	}
	drifted := `BenchmarkSimulator-8   364   3374339 ns/op   257218 guest_instructions   9049000 B/op   258 allocs/op
`
	code, out, _ = runDiff(t, []string{"-baseline", base, "-quick"}, drifted)
	if code != 1 {
		t.Fatalf("quick mode ignored a deterministic-counter drift (%d):\n%s", code, out)
	}
}

func TestToleranceOverride(t *testing.T) {
	base := writeBaseline(t, benchText)
	noisy := `BenchmarkSimulator-8   364   5398942 ns/op   257219 guest_instructions   9049000 B/op   258 allocs/op
`
	if code, out, _ := runDiff(t, []string{"-baseline", base}, noisy); code != 1 {
		t.Fatalf("default tolerance accepted +60%% ns/op (%d):\n%s", code, out)
	}
	if code, out, _ := runDiff(t, []string{"-baseline", base, "-tol", "ns_per_op=0.7"}, noisy); code != 0 {
		t.Fatalf("-tol override not honored (%d):\n%s", code, out)
	}
	if code, _, _ := runDiff(t, []string{"-baseline", base, "-tol", "garbage"}, noisy); code != 2 {
		t.Error("bad -tol spec not a usage error")
	}
}

func TestMissingBenchmarkWarns(t *testing.T) {
	base := writeBaseline(t, benchText)
	only := `BenchmarkSimulator-8   364   3374339 ns/op   257219 guest_instructions   9049000 B/op   258 allocs/op
`
	code, _, stderr := runDiff(t, []string{"-baseline", base}, only)
	if code != 0 {
		t.Fatalf("intersection comparison exited %d", code)
	}
	if !strings.Contains(stderr, "Compile") {
		t.Errorf("dropped benchmark not warned about: %s", stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runDiff(t, nil, ""); code != 2 {
		t.Error("no args: want usage error")
	}
	if code, _, _ := runDiff(t, []string{"-emit"}, "no bench lines here"); code != 2 {
		t.Error("-emit with no benchmarks: want error")
	}
	if code, _, _ := runDiff(t, []string{"-baseline", "/nonexistent.json"}, benchText); code != 2 {
		t.Error("missing baseline: want error")
	}
}

// TestCommittedBaselineSelfComparison: the committed PR 5 artifact must
// compare clean against itself (the acceptance criterion's zero-exit leg).
func TestCommittedBaselineSelfComparison(t *testing.T) {
	path := "../../BENCH_pr5.json"
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no committed baseline yet: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runDiff(t, []string{"-baseline", path}, string(raw))
	if code != 0 {
		t.Fatalf("BENCH_pr5.json vs itself exited %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
}
