// Command benchdiff converts `go test -bench` output into the repo's
// BENCH_*.json perf artifact and diffs a fresh run against a committed
// baseline with per-metric tolerance thresholds. It replaces the awk
// emitter that used to live in scripts/bench.sh.
//
// Usage:
//
//	go test -bench ... -benchmem | benchdiff -emit > BENCH_prN.json
//	go test -bench ... -benchmem | benchdiff -baseline BENCH_prN.json
//	benchdiff -baseline old.json -new new.json [-tol k=f,...] [-quick] [-v]
//
//	-emit             parse bench text on stdin, write the JSON artifact to
//	                  stdout (no comparison)
//	-baseline file    committed artifact to diff against
//	-new file         fresh results: a BENCH JSON artifact, or raw `go
//	                  test -bench` text (auto-detected); default stdin
//	-tol k=f,...      override tolerance fractions per metric key, e.g.
//	                  "ns_per_op=0.6,allocs_per_op=0.05"
//	-quick            smoke mode for short -benchtime runs: every
//	                  directional tolerance ×4 (exact metrics — simulated
//	                  quantities like guest_instructions — stay exact)
//	-v                print every compared metric, not just regressions
//
// Comparison covers the intersection of the two artifacts; baseline
// benchmarks missing from the fresh run are listed as a warning (dropped
// coverage), never silently ignored. Exit status: 0 clean, 1 regression
// found, 2 usage or parse error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	emit := fs.Bool("emit", false, "emit the JSON artifact for bench text on stdin")
	baseline := fs.String("baseline", "", "committed BENCH_*.json to diff against")
	newPath := fs.String("new", "", "fresh results (JSON artifact or bench text; default stdin)")
	tol := fs.String("tol", "", "tolerance overrides, e.g. \"ns_per_op=0.6\"")
	quick := fs.Bool("quick", false, "smoke mode: directional tolerances ×4, exact metrics stay exact")
	verbose := fs.Bool("v", false, "print every compared metric")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *emit {
		if *baseline != "" || *newPath != "" {
			fmt.Fprintln(stderr, "benchdiff: -emit takes no -baseline/-new")
			return 2
		}
		s, err := benchfmt.Parse(stdin)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		if len(s.Benchmarks) == 0 {
			fmt.Fprintln(stderr, "benchdiff: no benchmark lines on stdin")
			return 2
		}
		s.Go = runtime.Version()
		if err := s.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		return 0
	}

	if *baseline == "" {
		fmt.Fprintln(stderr, "benchdiff: -baseline (or -emit) is required")
		fs.Usage()
		return 2
	}
	base, err := benchfmt.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	cur, err := readFresh(*newPath, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchdiff: fresh results contain no benchmarks")
		return 2
	}

	th := benchfmt.DefaultThresholds()
	if *quick {
		th = th.Scale(4)
	}
	if th, err = th.Override(*tol); err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	deltas := benchfmt.Compare(base, cur, th)
	if len(deltas) == 0 {
		fmt.Fprintln(stderr, "benchdiff: baseline and fresh results share no benchmarks")
		return 2
	}
	bad := 0
	for _, d := range deltas {
		if d.Regressed {
			bad++
		}
		if d.Regressed || *verbose {
			fmt.Fprintln(stdout, d)
		}
	}
	for _, name := range benchfmt.MissingFrom(base, cur) {
		fmt.Fprintf(stderr, "benchdiff: warning: baseline benchmark %q missing from fresh results\n", name)
	}
	if bad > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d metric(s) regressed vs %s\n", bad, *baseline)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d metric(s) within tolerance of %s\n", len(deltas), *baseline)
	return 0
}

// readFresh loads the fresh results from path (or stdin when path is "" or
// "-"), accepting either a BENCH JSON artifact or raw bench text.
func readFresh(path string, stdin io.Reader) (*benchfmt.Set, error) {
	var raw []byte
	var err error
	if path == "" || path == "-" {
		raw, err = io.ReadAll(stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(raw, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return benchfmt.ParseJSON(bytes.NewReader(raw))
	}
	return benchfmt.Parse(bytes.NewReader(raw))
}
