package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/olden"
	"repro/internal/simple"
)

func main() {
	bm := olden.ByName("perimeter")
	src := bm.Source(olden.Params{Size: 4})
	u, err := core.Compile("perimeter.ec", src, core.Options{Optimize: true})
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"sum_adjacent", "gtequal_adj_neighbor", "perimeter"} {
		fmt.Println(simple.FuncString(u.Simple.FuncByName(name), simple.PrintOptions{Labels: true}))
	}
	fmt.Println(u.Report)
}
