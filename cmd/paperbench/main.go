// Command paperbench regenerates the evaluation artifacts of Zhu & Hendren,
// "Communication Optimizations for Parallel C Programs" (PLDI 1998) on the
// simulated EARTH-MANNA machine:
//
//	-table1    Table I: communication operation costs
//	-table2    Table II: benchmark descriptions
//	-fig10     Figure 10: dynamic communication counts, simple vs optimized
//	-table3    Table III: execution times, speedups, improvements
//	-pgo       PGO ablation: static-heuristic vs profile-guided optimization
//	-faultsweep  reliable-messaging validation: each benchmark under
//	             increasing fault rates, checking completion and result
//	             fidelity
//	-all       everything (default when no flag given)
//
//	-nodes N       machine size for fig10, the PGO table and the fault
//	               sweep (default 4)
//	-procs list    comma-separated processor counts for table3
//	               (default 1,2,4,8,16)
//	-scale s       problem scale: quick | default (default "default")
//	-fault-seed N  PRNG seed for the fault sweep (default 1)
//	-json          emit one machine-readable JSON object instead of text
//	-out file      write the report to file instead of stdout (used by
//	               scripts/bench.sh to commit the fault sweep as
//	               BENCH_fault_prN.json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/olden"
)

// jsonReport is the -json output shape: one object per requested artifact.
type jsonReport struct {
	Table1     *harness.Table1Result     `json:"table1,omitempty"`
	Fig10      *harness.Fig10Result      `json:"fig10,omitempty"`
	Table3     *harness.Table3Result     `json:"table3,omitempty"`
	PGO        *harness.PGOResult        `json:"pgo,omitempty"`
	FaultSweep *harness.FaultSweepResult `json:"faultSweep,omitempty"`
}

func main() {
	t1 := flag.Bool("table1", false, "Table I")
	t2 := flag.Bool("table2", false, "Table II")
	f10 := flag.Bool("fig10", false, "Figure 10")
	t3 := flag.Bool("table3", false, "Table III")
	pgo := flag.Bool("pgo", false, "PGO ablation table")
	faultSweep := flag.Bool("faultsweep", false, "fault-injection sweep over the benchmarks")
	all := flag.Bool("all", false, "everything")
	nodes := flag.Int("nodes", 4, "machine size for fig10, the PGO table and the fault sweep")
	procsFlag := flag.String("procs", "1,2,4,8,16", "processor counts for table3")
	scale := flag.String("scale", "default", "problem scale: quick|default")
	faultSeed := flag.Uint64("fault-seed", 1, "PRNG seed for the fault sweep")
	simJ := flag.Int("sim-j", 0, "simulator event-loop workers per run (0 = classic sequential loop); all measurements are identical for any value")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON")
	outPath := flag.String("out", "", "write the report to this file instead of stdout")
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	if !*t1 && !*t2 && !*f10 && !*t3 && !*pgo && !*faultSweep {
		*all = true
	}
	params := paramsFor(*scale)
	harness.SimWorkers = *simJ
	var rep jsonReport

	if (*all || *t2) && !*asJSON {
		fmt.Fprintln(out, harness.Table2())
	}
	if *all || *t1 {
		res, err := harness.MeasureTable1()
		if err != nil {
			fatal(err)
		}
		rep.Table1 = res
		if !*asJSON {
			fmt.Fprintln(out, res)
		}
	}
	if *all || *f10 {
		res, err := harness.MeasureFig10(*nodes, params)
		if err != nil {
			fatal(err)
		}
		rep.Fig10 = res
		if !*asJSON {
			fmt.Fprintln(out, res)
			fmt.Fprintln(out, res.Bars())
		}
	}
	if *all || *t3 {
		var procs []int
		for _, p := range strings.Split(*procsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad -procs element %q", p))
			}
			procs = append(procs, v)
		}
		res, err := harness.MeasureTable3(procs, params)
		if err != nil {
			fatal(err)
		}
		rep.Table3 = res
		if !*asJSON {
			fmt.Fprintln(out, res)
		}
	}
	if *all || *pgo {
		res, err := harness.MeasurePGO(*nodes, params)
		if err != nil {
			fatal(err)
		}
		rep.PGO = res
		if !*asJSON {
			fmt.Fprintln(out, res)
		}
	}
	if *all || *faultSweep {
		res, err := harness.MeasureFaultSweep(*nodes, nil, *faultSeed, params)
		if err != nil {
			fatal(err)
		}
		rep.FaultSweep = res
		if !*asJSON {
			fmt.Fprintln(out, res)
		}
		if !res.Ok() {
			fatal(fmt.Errorf("fault sweep: a run failed or diverged (see table)"))
		}
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			fatal(err)
		}
	}
}

func paramsFor(scale string) func(*olden.Benchmark) olden.Params {
	switch scale {
	case "default":
		return harness.DefaultParams
	case "quick":
		return func(bm *olden.Benchmark) olden.Params {
			p := bm.DefaultParams
			switch bm.Name {
			case "power":
				p.Size, p.Iters = 8, 2
			case "perimeter":
				p.Size = 5
			case "tsp":
				p.Size = 64
			case "health":
				p.Size, p.Iters = 3, 20
			case "voronoi":
				p.Size = 96
			}
			return p
		}
	default:
		fatal(fmt.Errorf("unknown -scale %q", scale))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
