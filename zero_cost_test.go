package repro_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/olden"
)

// TestFaultLayerZeroCostWhenDisabled locks the "zero cost when disabled"
// property of the fault-injection layer against the PR 3 baseline: with
// RunConfig.Faults nil, the simulator must execute the same guest schedule
// (instruction count unchanged) and allocate no more per run than the
// recorded BenchmarkSimulator baseline in BENCH_pr3.json.
func TestFaultLayerZeroCostWhenDisabled(t *testing.T) {
	raw, err := os.ReadFile("BENCH_pr3.json")
	if err != nil {
		t.Skipf("no PR 3 baseline: %v", err)
	}
	var base struct {
		Benchmarks []struct {
			Name              string  `json:"name"`
			GuestInstructions float64 `json:"guest_instructions"`
			AllocsPerOp       float64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("BENCH_pr3.json: %v", err)
	}
	var wantInstr, wantAllocs float64
	for _, b := range base.Benchmarks {
		if b.Name == "Simulator" {
			wantInstr, wantAllocs = b.GuestInstructions, b.AllocsPerOp
		}
	}
	if wantInstr == 0 {
		t.Fatal("BENCH_pr3.json has no Simulator entry")
	}

	// The exact BenchmarkSimulator workload: power at quick parameters,
	// optimized, 4 nodes, no faults.
	bm := olden.ByName("power")
	p := core.NewPipeline(core.Options{Optimize: true})
	u, err := p.Compile("power.ec", bm.Source(quickParams(bm)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(u, core.RunConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Counts.Instructions) != wantInstr {
		t.Errorf("fault-free guest instruction count changed: got %d, baseline %v",
			res.Counts.Instructions, wantInstr)
	}
	if res.Faults != nil {
		t.Error("fault-free run carries FaultStats")
	}

	allocs := testing.AllocsPerRun(5, func() {
		if _, err := p.Run(u, core.RunConfig{Nodes: 4}); err != nil {
			t.Fatal(err)
		}
	})
	// Allow a sliver of headroom for host-runtime noise; the point is that
	// the fault layer must not add per-message or per-event allocations
	// (which would show up as thousands, not units).
	if allocs > wantAllocs+8 {
		t.Errorf("fault-free run allocates %.0f objects/op, baseline %v", allocs, wantAllocs)
	}
}
