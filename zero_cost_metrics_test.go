package repro_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/olden"
)

// simulatorBaseline reads the BenchmarkSimulator entry of BENCH_pr3.json,
// the PR 3 perf pin both zero-cost tests compare against.
func simulatorBaseline(t *testing.T) (wantInstr, wantAllocs float64) {
	t.Helper()
	raw, err := os.ReadFile("BENCH_pr3.json")
	if err != nil {
		t.Skipf("no PR 3 baseline: %v", err)
	}
	var base struct {
		Benchmarks []struct {
			Name              string  `json:"name"`
			GuestInstructions float64 `json:"guest_instructions"`
			AllocsPerOp       float64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("BENCH_pr3.json: %v", err)
	}
	for _, b := range base.Benchmarks {
		if b.Name == "Simulator" {
			return b.GuestInstructions, b.AllocsPerOp
		}
	}
	t.Fatal("BENCH_pr3.json has no Simulator entry")
	return 0, 0
}

// TestMetricsZeroCostWhenDisabled locks the "zero cost when disabled"
// property of the telemetry layer against the PR 3 baseline, the same way
// TestFaultLayerZeroCostWhenDisabled pins the fault layer: with no registry
// and no sampler attached, the simulator must execute the identical guest
// schedule and allocate no more per run than the recorded BenchmarkSimulator
// baseline.
func TestMetricsZeroCostWhenDisabled(t *testing.T) {
	wantInstr, wantAllocs := simulatorBaseline(t)

	// The exact BenchmarkSimulator workload: power at quick parameters,
	// optimized, 4 nodes, no telemetry.
	bm := olden.ByName("power")
	p := core.NewPipeline(core.Options{Optimize: true})
	u, err := p.Compile("power.ec", bm.Source(quickParams(bm)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(u, core.RunConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Counts.Instructions) != wantInstr {
		t.Errorf("unmetered guest instruction count changed: got %d, baseline %v",
			res.Counts.Instructions, wantInstr)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := p.Run(u, core.RunConfig{Nodes: 4}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > wantAllocs+8 {
		t.Errorf("unmetered run allocates %.0f objects/op, baseline %v", allocs, wantAllocs)
	}
}

// TestMetricsRegistryRunOverheadBounded: a pipeline with a registry attached
// (but no sampler) updates a handful of counters per run — the steady-state
// per-run allocation cost must stay within a few objects of the unmetered
// baseline, and the guest schedule must be untouched.
func TestMetricsRegistryRunOverheadBounded(t *testing.T) {
	wantInstr, wantAllocs := simulatorBaseline(t)

	bm := olden.ByName("power")
	reg := metrics.NewRegistry()
	p := core.NewPipeline(core.Options{Optimize: true, Metrics: reg})
	u, err := p.Compile("power.ec", bm.Source(quickParams(bm)))
	if err != nil {
		t.Fatal(err)
	}
	// Prime: the first run registers the counters (which allocates once).
	res, err := p.Run(u, core.RunConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Counts.Instructions) != wantInstr {
		t.Errorf("metered guest instruction count changed: got %d, baseline %v",
			res.Counts.Instructions, wantInstr)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := p.Run(u, core.RunConfig{Nodes: 4}); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state: counter lookups are map reads and updates are atomics,
	// so the budget is the unmetered baseline plus a sliver of noise.
	if allocs > wantAllocs+16 {
		t.Errorf("metered run allocates %.0f objects/op, unmetered baseline %v", allocs, wantAllocs)
	}
}
