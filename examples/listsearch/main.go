// Listsearch reproduces the paper's worked example of Figures 7 and 8: a
// list traversal comparing each element against a target point. It prints
// the possible-placement analysis' RemoteReads sets per statement (Figure
// 7), the transformed code with pipelined and blocked communication (Figure
// 8(b)), and runs both versions on a 4-node machine.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/simple"
)

const src = `
struct Point {
	double x;
	double y;
	struct Point *next;
};

double f(double ax, double ay, double bx, double by) {
	double dx;
	double dy;
	dx = ax - bx;
	dy = ay - by;
	return sqrt(dx * dx + dy * dy);
}

// The paper's Figure 7 fragment: find the last point within epsilon of *t,
// then compute coordinate differences.
double example(Point *head, Point *t, double epsilon) {
	Point *p;
	Point *close;
	double ax; double ay; double bx; double by;
	double cx; double tx; double diffx;
	double cy; double ty; double diffy;
	double dist;
	close = NULL;
	p = head;
	while (p != NULL) {
		ax = p->x;
		ay = p->y;
		bx = t->x;
		by = t->y;
		dist = f(ax, ay, bx, by);
		if (dist < epsilon) close = p;
		p = p->next;
	}
	cx = close->x;
	tx = t->x;
	diffx = cx - tx;
	cy = close->y;
	ty = t->y;
	diffy = cy - ty;
	return diffx + diffy;
}

int main() {
	Point *head;
	Point *t;
	Point *p;
	int i;
	int n;
	double d;
	head = NULL;
	n = num_nodes();
	for (i = 0; i < 64; i++) {
		p = alloc_on(Point, i % n);
		p->x = dbl(i % 17);
		p->y = dbl(i % 13);
		p->next = head;
		head = p;
	}
	t = alloc(Point);
	t->x = 5.0;
	t->y = 5.0;
	d = example(head, t, 4.0);
	print_double(d);
	return trunc(d);
}
`

func main() {
	optPipe := core.NewPipeline(core.Options{Optimize: true, NoInline: true})
	u, err := optPipe.Compile("listsearch.ec", src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== RemoteReads sets (possible-placement analysis, cf. Figure 7) ===")
	fn := u.Simple.FuncByName("example")
	simple.WalkStmts(fn.Body, func(s simple.Stmt) {
		b, ok := s.(*simple.Basic)
		if !ok {
			return
		}
		if rs := u.Placement.Reads[s]; rs != nil && rs.Len() > 0 {
			fmt.Printf("  S%-3d %-30s %s\n", b.Label, simple.BasicText(b), rs)
		}
	})

	fmt.Println("\n=== Transformed code (cf. Figure 8(b)) ===")
	fmt.Println(simple.FuncString(fn, simple.PrintOptions{Labels: true}))
	fmt.Println(u.Report)

	simplePipe := core.NewPipeline(core.Options{NoInline: true})
	simpleUnit, err := simplePipe.Compile("listsearch.ec", src)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := simplePipe.Run(simpleUnit, core.RunConfig{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	ores, err := optPipe.Run(u, core.RunConfig{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	if sres.Output != ores.Output {
		log.Fatalf("outputs differ: %q vs %q", sres.Output, ores.Output)
	}
	fmt.Printf("output: %q\n", sres.Output)
	fmt.Printf("simple:    %8.3f ms   %s\n", float64(sres.Time)/1e6, sres.Counts)
	fmt.Printf("optimized: %8.3f ms   %s\n", float64(ores.Time)/1e6, ores.Counts)
	fmt.Printf("improvement: %.2f%%\n", 100*(1-float64(ores.Time)/float64(sres.Time)))
}
