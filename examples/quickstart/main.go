// Quickstart: compile the paper's motivating distance() example (Figure 3),
// show the SIMPLE code before and after communication optimization, and run
// both versions on a 2-node simulated EARTH-MANNA machine.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/simple"
)

const src = `
struct Point {
	double x;
	double y;
};

// The paper's Figure 3: with no locality information, every indirect
// reference through p is potentially remote.
double distance(Point *p) {
	double dist_p;
	dist_p = sqrt((p->x * p->x) + (p->y * p->y));
	return dist_p;
}

int main() {
	Point *p;
	double total;
	int i;
	// The point lives on the other node: the reads really are remote.
	p = alloc_on(Point, 1);
	p->x = 3.0;
	p->y = 4.0;
	total = 0.0;
	for (i = 0; i < 100; i++) {
		total = total + distance(p);
	}
	print_double(total);
	return trunc(total);
}
`

func main() {
	// Compile without the communication optimization ("simple")...
	simplePipe := core.NewPipeline(core.Options{NoInline: true})
	simpleUnit, err := simplePipe.Compile("distance.ec", src)
	if err != nil {
		log.Fatal(err)
	}
	// ...and with it.
	optPipe := core.NewPipeline(core.Options{Optimize: true, NoInline: true})
	optUnit, err := optPipe.Compile("distance.ec", src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== SIMPLE form (before optimization, cf. Figure 3(b)) ===")
	fmt.Println(simple.FuncString(simpleUnit.Simple.FuncByName("distance"), simple.PrintOptions{}))
	fmt.Println("=== After communication selection (cf. Figure 3(c)) ===")
	fmt.Println(simple.FuncString(optUnit.Simple.FuncByName("distance"), simple.PrintOptions{}))
	fmt.Println(optUnit.Report)
	fmt.Println()

	// Run both on a 2-node machine and compare.
	sres, err := simplePipe.Run(simpleUnit, core.RunConfig{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	ores, err := optPipe.Run(optUnit, core.RunConfig{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output (both versions): %q\n", sres.Output)
	fmt.Printf("simple:    %8.3f ms   %s\n", float64(sres.Time)/1e6, sres.Counts)
	fmt.Printf("optimized: %8.3f ms   %s\n", float64(ores.Time)/1e6, ores.Counts)
	fmt.Printf("improvement: %.2f%%\n", 100*(1-float64(ores.Time)/float64(sres.Time)))
}
