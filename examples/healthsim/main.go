// Healthsim runs the Olden health benchmark (the Colombian health-care
// simulation, cf. the paper's Figure 11(c)) across machine sizes, printing
// the simple-vs-optimized comparison — a single-benchmark slice of the
// paper's Table III.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/olden"
)

func main() {
	bm := olden.ByName("health")
	params := bm.DefaultParams
	src := bm.Source(params)
	fmt.Printf("health: %d levels, %d time steps\n\n", params.Size, params.Iters)

	simplePipe := core.NewPipeline(core.Options{})
	optPipe := core.NewPipeline(core.Options{Optimize: true})
	u, err := simplePipe.Compile("health.ec", src)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := simplePipe.Run(u, core.RunConfig{Nodes: 1, Sequential: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential C baseline: %8.3f ms  output=%q\n\n",
		float64(seq.Time)/1e6, seq.Output)

	ou, err := optPipe.Compile("health.ec", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %12s %12s %8s %8s %8s\n",
		"nodes", "simple (ms)", "opt (ms)", "s.speed", "o.speed", "impr%")
	for _, nodes := range []int{1, 2, 4, 8} {
		sres, err := simplePipe.Run(u, core.RunConfig{Nodes: nodes})
		if err != nil {
			log.Fatal(err)
		}
		ores, err := optPipe.Run(ou, core.RunConfig{Nodes: nodes})
		if err != nil {
			log.Fatal(err)
		}
		if sres.Output != ores.Output || sres.Output != seq.Output {
			log.Fatalf("outputs diverged at %d nodes", nodes)
		}
		fmt.Printf("%6d %12.3f %12.3f %8.2f %8.2f %7.2f%%\n",
			nodes,
			float64(sres.Time)/1e6, float64(ores.Time)/1e6,
			float64(seq.Time)/float64(sres.Time),
			float64(seq.Time)/float64(ores.Time),
			100*(1-float64(ores.Time)/float64(sres.Time)))
	}
}
