// Ablation studies the design choices DESIGN.md calls out, on the power and
// perimeter benchmarks: the blocking threshold (the paper measured that
// blkmov wins at three or more words), and each optimization component in
// isolation (read motion, write motion, blocking).
package main

import (
	"fmt"
	"log"

	"repro/internal/commsel"
	"repro/internal/core"
	"repro/internal/olden"
)

func main() {
	for _, name := range []string{"power", "perimeter"} {
		bm := olden.ByName(name)
		params := bm.DefaultParams
		src := bm.Source(params)

		basePipe := core.NewPipeline(core.Options{})
		baseUnit, err := basePipe.Compile(name+".ec", src)
		if err != nil {
			log.Fatal(err)
		}
		base, err := basePipe.Run(baseUnit, core.RunConfig{Nodes: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (4 nodes; simple baseline %.3f ms) ===\n",
			name, float64(base.Time)/1e6)

		run := func(label string, sel commsel.Options) {
			p := core.NewPipeline(core.Options{Optimize: true, Sel: sel})
			u, err := p.Compile(name+".ec", src)
			if err != nil {
				log.Fatal(err)
			}
			res, err := p.Run(u, core.RunConfig{Nodes: 4})
			if err != nil {
				log.Fatal(err)
			}
			if res.Output != base.Output {
				log.Fatalf("%s/%s: output diverged", name, label)
			}
			fmt.Printf("%-28s %10.3f ms  impr %6.2f%%  (%s)\n",
				label, float64(res.Time)/1e6,
				100*(1-float64(res.Time)/float64(base.Time)), res.Counts)
		}

		run("full optimization", commsel.Options{})
		runReorder := func(label string) {
			p := core.NewPipeline(core.Options{Optimize: true, ReorderFields: true})
			u, err := p.Compile(name+".ec", src)
			if err != nil {
				log.Fatal(err)
			}
			res, err := p.Run(u, core.RunConfig{Nodes: 4})
			if err != nil {
				log.Fatal(err)
			}
			if res.Output != base.Output {
				log.Fatalf("%s/%s: output diverged", name, label)
			}
			fmt.Printf("%-28s %10.3f ms  impr %6.2f%%  (%s)\n",
				label, float64(res.Time)/1e6,
				100*(1-float64(res.Time)/float64(base.Time)), res.Counts)
		}
		runReorder("full + field reordering")
		run("no blocking", commsel.Options{NoBlocking: true})
		run("no write motion", commsel.Options{NoWriteMotion: true})
		run("no read motion", commsel.Options{NoReadMotion: true})
		for _, th := range []int{2, 4, 6} {
			run(fmt.Sprintf("block threshold %d", th), commsel.Options{BlockThreshold: th})
		}
		fmt.Println()
	}
}
