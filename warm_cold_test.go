package repro_test

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/olden"
)

// TestWarmRecompileUnderTenPercentOfCold pins the cache's performance
// contract directly: recompiling an unchanged Olden program against a warm
// cache must cost less than 10% of the cold compile. The real margin is
// orders of magnitude (a hash plus a map lookup vs. full analysis), so the
// 10% line holds even on a loaded CI host; best-of-N on both sides keeps
// scheduler noise out.
func TestWarmRecompileUnderTenPercentOfCold(t *testing.T) {
	bm := olden.ByName("health")
	src := bm.Source(olden.QuickParams(bm))
	req := core.CompileRequest{Name: "health.ec", Source: src}

	best := func(n int, f func()) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < b {
				b = d
			}
		}
		return b
	}

	coldPipe := core.NewPipeline(core.Options{Optimize: true})
	cold := best(3, func() {
		if _, err := coldPipe.Do(req); err != nil {
			t.Fatal(err)
		}
	})

	warmPipe := core.NewPipeline(core.Options{Optimize: true, Cache: cache.New(0, "")})
	if _, err := warmPipe.Do(req); err != nil {
		t.Fatal(err)
	}
	warm := best(5, func() {
		res, err := warmPipe.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Hit {
			t.Fatal("warm compile missed the cache")
		}
	})

	if warm*10 >= cold {
		t.Errorf("warm recompile %v is not <10%% of cold %v", warm, cold)
	}
	t.Logf("cold %v, warm %v (%.2f%%)", cold, warm, 100*float64(warm)/float64(cold))
}
